package sparse

import (
	"fmt"
	"sort"
)

// Delta application for the streaming paths: an ICSR is immutable in
// this package's kernels, so arriving batches produce a new matrix that
// shares nothing with the old one — the decomposition engine
// (internal/core) can keep serving from the previous matrix while the
// updated one is built. All three operations cost O(NNZ + delta) and
// are entirely serial (index-ordered merges), hence trivially
// deterministic.

// ApplyPatch returns a new ICSR with the given cell patches applied
// under set semantics: a patched cell's interval becomes exactly
// [t.Lo, t.Hi], whether the cell was previously stored or not (patching
// an unstored cell inserts it; patching to [0, 0] stores an explicit
// zero, this package's "observed zero" convention). The patch may arrive
// in any order; duplicate cells within one patch and out-of-range
// indices are errors.
func (a *ICSR) ApplyPatch(ts []ITriplet) (*ICSR, error) {
	sorted := make([]ITriplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(x, y int) bool {
		if sorted[x].Row != sorted[y].Row {
			return sorted[x].Row < sorted[y].Row
		}
		return sorted[x].Col < sorted[y].Col
	})
	for k, t := range sorted {
		if t.Row < 0 || t.Row >= a.Rows || t.Col < 0 || t.Col >= a.Cols {
			return nil, fmt.Errorf("sparse: ApplyPatch: cell (%d, %d) outside %dx%d", t.Row, t.Col, a.Rows, a.Cols)
		}
		if k > 0 && t.Row == sorted[k-1].Row && t.Col == sorted[k-1].Col {
			return nil, fmt.Errorf("sparse: ApplyPatch: duplicate cell (%d, %d)", t.Row, t.Col)
		}
	}
	out := &ICSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColInd: make([]int, 0, a.NNZ()+len(sorted)),
		Lo:     make([]float64, 0, a.NNZ()+len(sorted)),
		Hi:     make([]float64, 0, a.NNZ()+len(sorted)),
	}
	p := 0 // next patch entry
	for i := 0; i < a.Rows; i++ {
		cols, lo, hi := a.RowView(i)
		q := 0 // next stored entry of row i
		for q < len(cols) || (p < len(sorted) && sorted[p].Row == i) {
			patchNext := p < len(sorted) && sorted[p].Row == i &&
				(q >= len(cols) || sorted[p].Col <= cols[q])
			if patchNext {
				if q < len(cols) && sorted[p].Col == cols[q] {
					q++ // patched over an existing cell
				}
				out.ColInd = append(out.ColInd, sorted[p].Col)
				out.Lo = append(out.Lo, sorted[p].Lo)
				out.Hi = append(out.Hi, sorted[p].Hi)
				p++
				continue
			}
			out.ColInd = append(out.ColInd, cols[q])
			out.Lo = append(out.Lo, lo[q])
			out.Hi = append(out.Hi, hi[q])
			q++
		}
		out.RowPtr[i+1] = len(out.ColInd)
	}
	return out, nil
}

// AppendRows returns [a; b]: b's rows appended below a's. The column
// counts must match.
func AppendRows(a, b *ICSR) (*ICSR, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: AppendRows: %d cols below %d cols", b.Cols, a.Cols)
	}
	out := &ICSR{
		Rows:   a.Rows + b.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+b.Rows+1),
		ColInd: make([]int, 0, a.NNZ()+b.NNZ()),
		Lo:     make([]float64, 0, a.NNZ()+b.NNZ()),
		Hi:     make([]float64, 0, a.NNZ()+b.NNZ()),
	}
	out.ColInd = append(append(out.ColInd, a.ColInd...), b.ColInd...)
	out.Lo = append(append(out.Lo, a.Lo...), b.Lo...)
	out.Hi = append(append(out.Hi, a.Hi...), b.Hi...)
	copy(out.RowPtr, a.RowPtr)
	base := a.NNZ()
	for i := 0; i <= b.Rows; i++ {
		out.RowPtr[a.Rows+i] = base + b.RowPtr[i]
	}
	return out, nil
}

// AppendCols returns [a b]: b's columns appended to the right of a's.
// The row counts must match.
func AppendCols(a, b *ICSR) (*ICSR, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("sparse: AppendCols: %d rows beside %d rows", b.Rows, a.Rows)
	}
	out := &ICSR{
		Rows:   a.Rows,
		Cols:   a.Cols + b.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColInd: make([]int, 0, a.NNZ()+b.NNZ()),
		Lo:     make([]float64, 0, a.NNZ()+b.NNZ()),
		Hi:     make([]float64, 0, a.NNZ()+b.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		cols, lo, hi := a.RowView(i)
		out.ColInd = append(out.ColInd, cols...)
		out.Lo = append(out.Lo, lo...)
		out.Hi = append(out.Hi, hi...)
		bcols, blo, bhi := b.RowView(i)
		for p, j := range bcols {
			out.ColInd = append(out.ColInd, a.Cols+j)
			out.Lo = append(out.Lo, blo[p])
			out.Hi = append(out.Hi, bhi[p])
		}
		out.RowPtr[i+1] = len(out.ColInd)
	}
	return out, nil
}
