// Matrix-free operator views of CSR storage for the truncated eigen/SVD
// solvers in internal/eig: block matvecs at O(NNZ·k) per apply, with the
// same ascending-k per-element accumulation order as the dense kernels,
// so a truncated decomposition through a sparse operator is bitwise
// identical to one through eig.NewDenseOp of the dense expansion (the
// stored-zero terms a CSR omits contribute exactly ±0 there).
package sparse

import (
	"fmt"
	"math"

	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// MulDenseInto computes dst = a·b for a dense right operand into the
// caller-supplied dst (a.Rows×b.Cols), overwriting it. Same sharding,
// accumulation order, and zero-skip semantics as MulDense.
//
//ivmf:noalloc
func MulDenseInto(dst *matrix.Dense, a *CSR, b *matrix.Dense) *matrix.Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDenseInto: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: MulDenseInto: dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	parallel.For(a.Rows, mulGrain(a, b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := a.RowView(i)
			orow := dst.RowView(i)
			for j := range orow {
				orow[j] = 0
			}
			for p, k := range cols {
				av := vals[p]
				if av == 0 {
					continue
				}
				brow := b.RowView(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return dst
}

// Operator wraps a CSR as a matrix-free linear operator (satisfying
// eig.Op): Apply is a CSR·Dense product and ApplyT runs over a transpose
// index built once at construction, so both cost O(NNZ·k) per block of k
// vectors. The counting transpose emits entries in ascending original-row
// order, keeping ApplyT's accumulation order identical to the dense
// TMulInto kernel.
type Operator struct {
	a, at *CSR
}

// NewOperator builds the operator view of a (one O(NNZ) transpose pass).
func NewOperator(a *CSR) *Operator {
	return &Operator{a: a, at: a.T()}
}

// Dims returns the operator shape.
func (o *Operator) Dims() (int, int) { return o.a.Rows, o.a.Cols }

// Apply computes dst = A·x.
func (o *Operator) Apply(dst, x *matrix.Dense) { MulDenseInto(dst, o.a, x) }

// ApplyT computes dst = Aᵀ·x.
func (o *Operator) ApplyT(dst, x *matrix.Dense) { MulDenseInto(dst, o.at, x) }

// MidCSR returns the midpoint matrix (Lo + Hi)/2 as a CSR sharing a's
// index structure (fresh value array) — the sparse counterpart of
// IMatrix.Mid for the ISVD0 path.
func (a *ICSR) MidCSR() *CSR {
	vals := make([]float64, len(a.Lo))
	for p, lo := range a.Lo {
		vals[p] = (lo + a.Hi[p]) / 2
	}
	return &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColInd: a.ColInd, Val: vals}
}

// NonNegative reports whether every stored Lo endpoint is >= 0 (then
// every Hi is too). For such matrices the Algorithm 1 endpoint Gram
// min/max collapses to Loᵀ·Lo and Hiᵀ·Hi, which is what lets the ISVD
// Gram step run matrix-free on the endpoint operators.
func (a *ICSR) NonNegative() bool {
	for _, lo := range a.Lo {
		if lo < 0 {
			return false
		}
	}
	return true
}

// MulDenseEndpoints is the sparse counterpart of
// imatrix.MulEndpointsScalarLeft (Supplementary Algorithm 1 with a scalar
// left operand): out = s × a with out.Lo = min(s·a.Lo, s·a.Hi) and out.Hi
// the max, fused — both endpoint products accumulate directly into the
// output storage in one sweep and are min/max-sorted in place. Output
// rows are sharded on the pool; each output element accumulates over
// ascending stored-row order, matching the dense kernel's ascending k
// (skipped terms there are exactly ±0), so for finite operands the result
// is bitwise identical to the imatrix version on a.ToIMatrix().
func MulDenseEndpoints(s *matrix.Dense, a *ICSR) *imatrix.IMatrix {
	if s.Cols != a.Rows {
		panic(fmt.Sprintf("sparse: MulDenseEndpoints: %dx%d · %dx%d", s.Rows, s.Cols, a.Rows, a.Cols))
	}
	out := imatrix.New(s.Rows, a.Cols)
	w := a.Cols
	perRow := 2 * 2 * (a.NNZ() + 1)
	parallel.For(s.Rows, parallel.Grain(perRow), func(rlo, rhi int) {
		for x := rlo; x < rhi; x++ {
			srow := s.RowView(x)
			t1 := out.Lo.Data[x*w : (x+1)*w]
			t2 := out.Hi.Data[x*w : (x+1)*w]
			for i := 0; i < a.Rows; i++ {
				sv := srow[i]
				if sv == 0 {
					continue
				}
				cols, lov, hiv := a.RowView(i)
				for p, j := range cols {
					t1[j] += sv * lov[p]
					t2[j] += sv * hiv[p]
				}
			}
			for j, v := range t1 {
				t1[j] = math.Min(v, t2[j])
				t2[j] = math.Max(v, t2[j])
			}
		}
	})
	return out
}
