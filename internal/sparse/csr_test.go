package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

func randDense(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func randIMatrix(rng *rand.Rand, rows, cols int, density float64) *imatrix.IMatrix {
	m := imatrix.New(rows, cols)
	for i := range m.Lo.Data {
		if rng.Float64() < density {
			v := rng.NormFloat64()
			m.Lo.Data[i] = v
			m.Hi.Data[i] = v + rng.Float64()
		}
	}
	return m
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, density := range []float64{0, 0.03, 0.3, 1} {
		m := randDense(rng, 17, 23, density)
		c := FromDense(m)
		back := c.ToDense()
		for i, v := range m.Data {
			if back.Data[i] != v {
				t.Fatalf("density %g: element %d: %v != %v", density, i, back.Data[i], v)
			}
		}
		wantNNZ := 0
		for _, v := range m.Data {
			if v != 0 {
				wantNNZ++
			}
		}
		if c.NNZ() != wantNNZ {
			t.Fatalf("density %g: NNZ = %d, want %d", density, c.NNZ(), wantNNZ)
		}
	}
}

func TestAtAndRowView(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 11, 13, 0.2)
	c := FromDense(m)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if got, want := c.At(i, j), m.At(i, j); got != want {
				t.Fatalf("At(%d, %d) = %v, want %v", i, j, got, want)
			}
		}
		cols, vals := c.RowView(i)
		if len(cols) != len(vals) {
			t.Fatalf("row %d: len(cols) %d != len(vals) %d", i, len(cols), len(vals))
		}
		for p := 1; p < len(cols); p++ {
			if cols[p] <= cols[p-1] {
				t.Fatalf("row %d: columns not strictly ascending", i)
			}
		}
	}
}

func TestFromCOO(t *testing.T) {
	ts := []Triplet{{2, 1, 3}, {0, 2, 1}, {0, 0, 2}, {1, 1, -4}}
	c, err := FromCOO(3, 3, ts)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]float64{{2, 0, 1}, {0, -4, 0}, {0, 3, 0}})
	got := c.ToDense()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}

	if _, err := FromCOO(3, 3, []Triplet{{0, 0, 1}, {0, 0, 2}}); err == nil {
		t.Error("duplicate entry accepted")
	}
	if _, err := FromCOO(3, 3, []Triplet{{3, 0, 1}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := FromCOO(3, 3, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := FromCOO(0, 3, nil); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 2}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
	cases := []struct {
		name   string
		rowPtr []int
		colInd []int
		val    []float64
	}{
		{"short rowptr", []int{0, 2}, []int{0, 1}, []float64{1, 2}},
		{"rowptr end mismatch", []int{0, 1, 1}, []int{0, 1}, []float64{1, 2}},
		{"rowptr decreasing", []int{0, 2, 1}, []int{0, 1, 0}, []float64{1, 2, 3}},
		{"col out of range", []int{0, 1, 2}, []int{0, 2}, []float64{1, 2}},
		{"cols not ascending", []int{0, 2, 2}, []int{1, 0}, []float64{1, 2}},
		{"val length mismatch", []int{0, 1, 2}, []int{0, 1}, []float64{1}},
	}
	for _, c := range cases {
		if _, err := NewCSR(2, 2, c.rowPtr, c.colInd, c.val); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randDense(rng, 9, 14, 0.25)
	got := FromDense(m).T().ToDense()
	want := m.T()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestICSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randIMatrix(rng, 12, 9, 0.3)
	c := FromIMatrix(m)
	back := c.ToIMatrix()
	for i := range m.Lo.Data {
		if back.Lo.Data[i] != m.Lo.Data[i] || back.Hi.Data[i] != m.Hi.Data[i] {
			t.Fatalf("element %d differs after round trip", i)
		}
	}
	if !c.IsWellFormed() {
		t.Error("well-formed matrix reported misordered")
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if got, want := c.At(i, j), m.At(i, j); got != want {
				t.Fatalf("At(%d, %d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestFromICOO(t *testing.T) {
	ts := []ITriplet{{1, 0, 1, 2}, {0, 1, -1, 0.5}}
	c, err := FromICOO(2, 2, ts)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(1, 0); got != (interval.Interval{Lo: 1, Hi: 2}) {
		t.Errorf("At(1,0) = %v", got)
	}
	if got := c.At(0, 1); got != (interval.Interval{Lo: -1, Hi: 0.5}) {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := c.At(0, 0); got != (interval.Interval{}) {
		t.Errorf("At(0,0) = %v, want zero", got)
	}
	if _, err := FromICOO(2, 2, []ITriplet{{0, 0, 1, 2}, {0, 0, 3, 4}}); err == nil {
		t.Error("duplicate entry accepted")
	}
}

func TestLoHiCSRShareStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randIMatrix(rng, 8, 8, 0.4)
	c := FromIMatrix(m)
	lo, hi := c.LoCSR(), c.HiCSR()
	if &lo.RowPtr[0] != &hi.RowPtr[0] || &lo.ColInd[0] != &hi.ColInd[0] {
		t.Error("endpoint CSRs do not share the index structure")
	}
	if &lo.Val[0] != &c.Lo[0] || &hi.Val[0] != &c.Hi[0] {
		t.Error("endpoint CSRs do not alias the value arrays")
	}
}
