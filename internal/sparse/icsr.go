package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// ICSR is an interval-valued sparse matrix in CSR form: one shared index
// structure (RowPtr, ColInd) with parallel Lo and Hi value arrays. A
// stored entry is the interval [Lo[p], Hi[p]]; unstored cells are the
// scalar zero, matching the "zero means unobserved" convention of the
// ratings/CF paths.
type ICSR struct {
	Rows, Cols int
	RowPtr     []int
	ColInd     []int
	Lo, Hi     []float64
}

// ITriplet is one COO entry of an interval sparse matrix.
type ITriplet struct {
	Row, Col int
	Lo, Hi   float64
}

// FromIMatrix compresses an interval matrix, storing every cell where
// either endpoint is non-zero (the observed-cell predicate of
// ipmf.observedInterval) in row-major order.
func FromIMatrix(m *imatrix.IMatrix) *ICSR {
	rows, cols := m.Rows(), m.Cols()
	rowPtr := make([]int, rows+1)
	var colInd []int
	var lo, hi []float64
	for i := 0; i < rows; i++ {
		lrow := m.Lo.RowView(i)
		hrow := m.Hi.RowView(i)
		for j := range lrow {
			if lrow[j] != 0 || hrow[j] != 0 {
				colInd = append(colInd, j)
				lo = append(lo, lrow[j])
				hi = append(hi, hrow[j])
			}
		}
		rowPtr[i+1] = len(colInd)
	}
	return &ICSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd, Lo: lo, Hi: hi}
}

// FromICOO builds an ICSR from interval COO triplets, sorted by
// (row, col); duplicates and out-of-range indices are errors.
func FromICOO(rows, cols int, ts []ITriplet) (*ICSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: FromICOO(%d, %d): non-positive dimension", rows, cols)
	}
	sorted := make([]ITriplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	rowPtr := make([]int, rows+1)
	colInd := make([]int, 0, len(sorted))
	lo := make([]float64, 0, len(sorted))
	hi := make([]float64, 0, len(sorted))
	for k, t := range sorted {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: FromICOO: entry (%d, %d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
		if k > 0 && t.Row == sorted[k-1].Row && t.Col == sorted[k-1].Col {
			return nil, fmt.Errorf("sparse: FromICOO: duplicate entry (%d, %d)", t.Row, t.Col)
		}
		colInd = append(colInd, t.Col)
		lo = append(lo, t.Lo)
		hi = append(hi, t.Hi)
		rowPtr[t.Row+1]++
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &ICSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd, Lo: lo, Hi: hi}, nil
}

// NNZ returns the number of stored entries.
func (a *ICSR) NNZ() int { return len(a.ColInd) }

// RowView returns row i's stored column indices and endpoint values,
// sharing the backing arrays.
func (a *ICSR) RowView(i int) (cols []int, lo, hi []float64) {
	p, q := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColInd[p:q], a.Lo[p:q], a.Hi[p:q]
}

// ForEachRow invokes fn once per row, in order, with that row's stored
// entries (views into the backing arrays).
func (a *ICSR) ForEachRow(fn func(i int, cols []int, lo, hi []float64)) {
	for i := 0; i < a.Rows; i++ {
		cols, lo, hi := a.RowView(i)
		fn(i, cols, lo, hi)
	}
}

// At returns element (i, j) as an interval; unstored cells are the
// scalar zero.
func (a *ICSR) At(i, j int) interval.Interval {
	cols, lo, hi := a.RowView(i)
	for p, c := range cols {
		if c == j {
			return interval.Interval{Lo: lo[p], Hi: hi[p]}
		}
		if c > j {
			break
		}
	}
	return interval.Interval{}
}

// IsWellFormed reports whether every stored entry satisfies Lo <= Hi.
func (a *ICSR) IsWellFormed() bool {
	for p, lo := range a.Lo {
		if lo > a.Hi[p] {
			return false
		}
	}
	return true
}

// LoCSR returns the minimum-endpoint matrix as a CSR sharing a's index
// structure and Lo array (no copy). Entries whose Lo endpoint is zero
// stay stored; the kernels skip zero values, so products are unaffected.
func (a *ICSR) LoCSR() *CSR {
	return &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColInd: a.ColInd, Val: a.Lo}
}

// HiCSR returns the maximum-endpoint matrix as a CSR sharing a's index
// structure and Hi array (no copy).
func (a *ICSR) HiCSR() *CSR {
	return &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColInd: a.ColInd, Val: a.Hi}
}

// ToIMatrix expands the ICSR to a dense interval matrix.
func (a *ICSR) ToIMatrix() *imatrix.IMatrix {
	out := imatrix.New(a.Rows, a.Cols)
	a.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		lrow := out.Lo.RowView(i)
		hrow := out.Hi.RowView(i)
		for p, j := range cols {
			lrow[j] = lo[p]
			hrow[j] = hi[p]
		}
	})
	return out
}

// T returns the transpose as a new ICSR: one counting transpose of the
// shared index structure moving both endpoint arrays together (the
// unfused formulation transposed the Lo and Hi CSRs separately). Like
// CSR.T it emits each output row's entries in ascending original-row
// order, so products against the transpose accumulate in the same k
// order as the dense kernels.
func (a *ICSR) T() *ICSR {
	nnz := a.NNZ()
	rowPtr := make([]int, a.Cols+1)
	for _, j := range a.ColInd {
		rowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colInd := make([]int, nnz)
	lo := make([]float64, nnz)
	hi := make([]float64, nnz)
	next := make([]int, a.Cols)
	copy(next, rowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		cols, lov, hiv := a.RowView(i)
		for p, j := range cols {
			q := next[j]
			next[j]++
			colInd[q] = i
			lo[q] = lov[p]
			hi[q] = hiv[p]
		}
	}
	return &ICSR{Rows: a.Cols, Cols: a.Rows, RowPtr: rowPtr, ColInd: colInd, Lo: lo, Hi: hi}
}

// MulEndpointsDense is the sparse counterpart of
// imatrix.MulEndpointsScalarRight (Supplementary Algorithm 1 with a
// scalar right operand), fused: the two endpoint products a.Lo·s and
// a.Hi·s accumulate directly into the output's Lo and Hi storage in one
// sweep over the stored entries, then each entry pair is min/max-sorted
// in place — no dense temporaries and no separate combine pass. The
// result is bitwise identical to the imatrix version on a.ToIMatrix()
// for finite operands (the stored-zero skip adds only ±0 terms there).
func MulEndpointsDense(a *ICSR, s *matrix.Dense) *imatrix.IMatrix {
	if a.Cols != s.Rows {
		panic(fmt.Sprintf("sparse: MulEndpointsDense: %dx%d · %dx%d", a.Rows, a.Cols, s.Rows, s.Cols))
	}
	out := imatrix.New(a.Rows, s.Cols)
	w := s.Cols
	parallel.For(a.Rows, mulGrain(a.LoCSR(), 2*w), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			cols, lov, hiv := a.RowView(i)
			t1 := out.Lo.Data[i*w : (i+1)*w]
			t2 := out.Hi.Data[i*w : (i+1)*w]
			for p, k := range cols {
				brow := s.Data[k*w : (k+1)*w]
				if alv := lov[p]; alv != 0 {
					for j, bv := range brow {
						t1[j] += alv * bv
					}
				}
				if ahv := hiv[p]; ahv != 0 {
					for j, bv := range brow {
						t2[j] += ahv * bv
					}
				}
			}
			for j, v := range t1 {
				t1[j] = math.Min(v, t2[j])
				t2[j] = math.Max(v, t2[j])
			}
		}
	})
	return out
}

// GramEndpoints returns the endpoint Gram product aᵀ×a of Supplementary
// Algorithm 1 — the Gram step of the ISVD2-4 pipelines, fed from sparse
// storage — fused: one shared-structure transpose replaces the two
// per-endpoint CSR transposes, and the four candidate products are
// accumulated per output row (two in the output's Lo/Hi storage, two in
// an O(cols) per-shard scratch) and min/max-combined in registers with
// one write per output element, instead of materializing four dense
// temporaries plus a fifth combine pass. It is elementwise identical to
// imatrix.MulEndpoints(m.T(), m) for m = a.ToIMatrix() (skipped zero
// terms contribute exactly ±0, so values compare equal; only the sign of
// a zero can differ).
func GramEndpoints(a *ICSR) *imatrix.IMatrix {
	at := a.T()
	n := a.Cols
	out := imatrix.New(n, n)
	avgRowNNZ := a.NNZ()/a.Rows + 1
	parallel.For(n, mulGrain(at.LoCSR(), 4*avgRowNNZ), func(rlo, rhi int) {
		// Scratch rows for the Lo·Hi and Hi·Lo candidate products; the
		// Lo·Lo and Hi·Hi candidates accumulate directly in out.
		t2 := make([]float64, n)
		t3 := make([]float64, n)
		for i := rlo; i < rhi; i++ {
			cols, lov, hiv := at.RowView(i)
			t1 := out.Lo.Data[i*n : (i+1)*n]
			t4 := out.Hi.Data[i*n : (i+1)*n]
			for p, k := range cols {
				bcols, blv, bhv := a.RowView(k)
				// Per-product stored-zero skips, matching the unfused
				// sparse.Mul semantics product by product.
				if alv := lov[p]; alv != 0 {
					for q, j := range bcols {
						t1[j] += alv * blv[q]
						t2[j] += alv * bhv[q]
					}
				}
				if ahv := hiv[p]; ahv != 0 {
					for q, j := range bcols {
						t3[j] += ahv * blv[q]
						t4[j] += ahv * bhv[q]
					}
				}
			}
			for j, p1 := range t1 {
				p2, p3, p4 := t2[j], t3[j], t4[j]
				t1[j] = math.Min(math.Min(p1, p2), math.Min(p3, p4))
				t4[j] = math.Max(math.Max(p1, p2), math.Max(p3, p4))
				t2[j], t3[j] = 0, 0
			}
		}
	})
	return out
}
