package sparse

// Sparse-vs-dense equivalence properties: for random matrices at any
// density, the CSR kernels must match the dense kernels of
// internal/matrix and internal/imatrix elementwise (bitwise up to the
// sign of zero — skipped zero terms contribute exactly ±0), for any
// worker count. This is the contract that lets the ratings/CF paths swap
// storage without perturbing a single reproduced number.

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

var densities = []float64{0.01, 0.05, 0.3, 1.0}

func withWorkers(n int, fn func()) {
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

func denseEqual(t *testing.T, label string, got, want *matrix.Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d: %v != %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func imatrixEqual(t *testing.T, label string, got, want *imatrix.IMatrix) {
	t.Helper()
	denseEqual(t, label+".Lo", got.Lo, want.Lo)
	denseEqual(t, label+".Hi", got.Hi, want.Hi)
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, density := range densities {
		a := randDense(rng, 43, 61, density)
		b := randDense(rng, 61, 29, 1)
		csr := FromDense(a)
		want := matrix.Mul(a, b)
		for _, w := range []int{1, 3, 8} {
			withWorkers(w, func() {
				denseEqual(t, "MulDense", MulDense(csr, b), want)
			})
		}
	}
}

func TestTMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, density := range densities {
		a := randDense(rng, 57, 31, density)
		b := randDense(rng, 57, 23, 1)
		csr := FromDense(a)
		want := matrix.TMul(a, b)
		for _, w := range []int{1, 3, 8} {
			withWorkers(w, func() {
				denseEqual(t, "TMulDense", TMulDense(csr, b), want)
			})
		}
	}
}

func TestSparseMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, density := range densities {
		a := randDense(rng, 37, 41, density)
		b := randDense(rng, 41, 33, density)
		want := matrix.Mul(a, b)
		ac, bc := FromDense(a), FromDense(b)
		for _, w := range []int{1, 3, 8} {
			withWorkers(w, func() {
				denseEqual(t, "Mul", Mul(ac, bc), want)
				denseEqual(t, "TMul", TMul(FromDense(a.T()), bc), matrix.TMul(a.T(), b))
			})
		}
	}
}

func TestMulEndpointsDenseMatchesIMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, density := range densities {
		m := randIMatrix(rng, 39, 27, density)
		s := randDense(rng, 27, 17, 1)
		csr := FromIMatrix(m)
		want := imatrix.MulEndpointsScalarRight(m, s)
		for _, w := range []int{1, 3, 8} {
			withWorkers(w, func() {
				imatrixEqual(t, "MulEndpointsDense", MulEndpointsDense(csr, s), want)
			})
		}
	}
}

func TestGramEndpointsMatchesIMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, density := range densities {
		m := randIMatrix(rng, 45, 21, density)
		csr := FromIMatrix(m)
		want := imatrix.MulEndpoints(m.T(), m)
		for _, w := range []int{1, 3, 8} {
			withWorkers(w, func() {
				imatrixEqual(t, "GramEndpoints", GramEndpoints(csr), want)
			})
		}
	}
}

// TestFromCOOMatchesFromDense pins that the two construction routes agree
// for any entry set: compressing a dense matrix and building from its
// non-zero triplets (in scrambled order) yield identical structures.
func TestFromCOOMatchesFromDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, density := range densities {
		m := randDense(rng, 19, 26, density)
		var ts []Triplet
		for i := 0; i < m.Rows; i++ {
			for j, v := range m.RowView(i) {
				if v != 0 {
					ts = append(ts, Triplet{Row: i, Col: j, Val: v})
				}
			}
		}
		rng.Shuffle(len(ts), func(a, b int) { ts[a], ts[b] = ts[b], ts[a] })
		fromCOO, err := FromCOO(m.Rows, m.Cols, ts)
		if err != nil {
			t.Fatal(err)
		}
		fromDense := FromDense(m)
		if fromCOO.NNZ() != fromDense.NNZ() {
			t.Fatalf("NNZ %d != %d", fromCOO.NNZ(), fromDense.NNZ())
		}
		for p := range fromDense.ColInd {
			if fromCOO.ColInd[p] != fromDense.ColInd[p] || fromCOO.Val[p] != fromDense.Val[p] {
				t.Fatalf("entry %d differs between COO and dense construction", p)
			}
		}
	}
}
