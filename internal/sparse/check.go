package sparse

import "fmt"

// CheckStructure validates the CSR index invariants of an interval
// sparse matrix: positive dimensions, a monotone row-pointer array of
// length Rows+1 starting at 0 and ending at NNZ, value arrays of
// matching length, and per-row column indices that are in range and
// strictly ascending. Every kernel in this package assumes these
// invariants without checking; decoders reconstituting an ICSR from
// untrusted bytes (the model store's snapshot reader) call this before
// handing the matrix to anything else, so corruption surfaces as a
// positioned error instead of an out-of-range panic deep in a product.
func (a *ICSR) CheckStructure() error {
	if a.Rows <= 0 || a.Cols <= 0 {
		return fmt.Errorf("sparse: CheckStructure: non-positive shape %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: CheckStructure: RowPtr has %d entries, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: CheckStructure: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	nnz := len(a.ColInd)
	if len(a.Lo) != nnz || len(a.Hi) != nnz {
		return fmt.Errorf("sparse: CheckStructure: %d column indices with %d/%d endpoint values", nnz, len(a.Lo), len(a.Hi))
	}
	if a.RowPtr[a.Rows] != nnz {
		return fmt.Errorf("sparse: CheckStructure: RowPtr ends at %d, want NNZ %d", a.RowPtr[a.Rows], nnz)
	}
	for i := 0; i < a.Rows; i++ {
		p, q := a.RowPtr[i], a.RowPtr[i+1]
		if p > q {
			return fmt.Errorf("sparse: CheckStructure: RowPtr decreases at row %d (%d > %d)", i, p, q)
		}
		if q > nnz {
			return fmt.Errorf("sparse: CheckStructure: RowPtr[%d] = %d exceeds NNZ %d", i+1, q, nnz)
		}
		prev := -1
		for _, j := range a.ColInd[p:q] {
			if j < 0 || j >= a.Cols {
				return fmt.Errorf("sparse: CheckStructure: row %d stores column %d outside 0..%d", i, j, a.Cols-1)
			}
			if j <= prev {
				return fmt.Errorf("sparse: CheckStructure: row %d columns not strictly ascending at %d", i, j)
			}
			prev = j
		}
	}
	return nil
}
