// Package sparse implements compressed sparse row (CSR) storage for the
// ratings/CF paths, where matrices are overwhelmingly unobserved: a
// scalar CSR and an interval ICSR whose lo/hi value arrays share one
// index structure. Construction comes from dense matrices, interval
// matrices, or COO triplets; the kernels (CSR·Dense products, transpose
// products for the Gram step, endpoint min/max combines) run row-sharded
// on the shared worker pool and are bitwise identical to their dense
// counterparts in internal/matrix and internal/imatrix for finite
// operands: both accumulate each output element in fixed ascending k
// order — exactly the order a CSR row scan produces — and the zero terms
// a CSR omits contribute exactly ±0 to a dense accumulator that is never
// -0. (The dense kernels no longer skip zero left factors, so 0·NaN
// propagates there; this package keeps the skip because its inputs are
// validated finite at the parse/construction boundary.)
//
//ivmf:deterministic
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CSR is a scalar matrix in compressed sparse row form: row i's stored
// entries are ColInd[RowPtr[i]:RowPtr[i+1]] (column indices, strictly
// ascending within the row) with values Val[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColInd     []int // len NNZ
	Val        []float64
}

// Triplet is one COO entry of a scalar sparse matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR wraps raw CSR arrays (no copy) after validating the structure:
// RowPtr must be non-decreasing from 0 to len(ColInd), and column indices
// must be in range and strictly ascending within each row.
func NewCSR(rows, cols int, rowPtr, colInd []int, val []float64) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: NewCSR(%d, %d): non-positive dimension", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: NewCSR: len(RowPtr) = %d, want %d", len(rowPtr), rows+1)
	}
	if len(colInd) != len(val) {
		return nil, fmt.Errorf("sparse: NewCSR: len(ColInd) = %d, len(Val) = %d", len(colInd), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(colInd) {
		return nil, fmt.Errorf("sparse: NewCSR: RowPtr spans [%d, %d], want [0, %d]", rowPtr[0], rowPtr[rows], len(colInd))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: NewCSR: RowPtr decreases at row %d", i)
		}
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if colInd[p] < 0 || colInd[p] >= cols {
				return nil, fmt.Errorf("sparse: NewCSR: column %d out of range at row %d", colInd[p], i)
			}
			if p > rowPtr[i] && colInd[p] <= colInd[p-1] {
				return nil, fmt.Errorf("sparse: NewCSR: columns not strictly ascending in row %d", i)
			}
		}
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd, Val: val}, nil
}

// FromDense compresses a dense matrix, storing every non-zero cell in
// row-major order.
func FromDense(m *matrix.Dense) *CSR {
	rowPtr := make([]int, m.Rows+1)
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	colInd := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.RowView(i) {
			if v != 0 {
				colInd = append(colInd, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(colInd)
	}
	return &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: rowPtr, ColInd: colInd, Val: val}
}

// FromCOO builds a CSR from COO triplets. The triplets are sorted by
// (row, col) — the input order does not matter — and duplicates or
// out-of-range indices are errors, so the result is uniquely determined
// by the entry set.
func FromCOO(rows, cols int, ts []Triplet) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: FromCOO(%d, %d): non-positive dimension", rows, cols)
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	rowPtr := make([]int, rows+1)
	colInd := make([]int, 0, len(sorted))
	val := make([]float64, 0, len(sorted))
	for k, t := range sorted {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: FromCOO: entry (%d, %d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
		if k > 0 && t.Row == sorted[k-1].Row && t.Col == sorted[k-1].Col {
			return nil, fmt.Errorf("sparse: FromCOO: duplicate entry (%d, %d)", t.Row, t.Col)
		}
		colInd = append(colInd, t.Col)
		val = append(val, t.Val)
		rowPtr[t.Row+1]++
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd, Val: val}, nil
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColInd) }

// RowView returns row i's stored column indices and values, sharing the
// CSR's backing arrays.
func (a *CSR) RowView(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColInd[lo:hi], a.Val[lo:hi]
}

// ForEachRow invokes fn once per row, in order, with that row's stored
// entries (views into the backing arrays).
func (a *CSR) ForEachRow(fn func(i int, cols []int, vals []float64)) {
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.RowView(i)
		fn(i, cols, vals)
	}
}

// At returns element (i, j), 0 when unstored. Lookup is a binary search
// over row i's columns.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.RowView(i)
	p := sort.SearchInts(cols, j)
	if p < len(cols) && cols[p] == j {
		return vals[p]
	}
	return 0
}

// ToDense expands the CSR to a dense matrix.
func (a *CSR) ToDense() *matrix.Dense {
	out := matrix.New(a.Rows, a.Cols)
	a.ForEachRow(func(i int, cols []int, vals []float64) {
		row := out.RowView(i)
		for p, j := range cols {
			row[j] = vals[p]
		}
	})
	return out
}

// T returns the transpose as a new CSR. The counting transpose emits each
// output row's entries in ascending original-row order, so products
// against the transpose accumulate in the same k order as the dense
// kernels.
func (a *CSR) T() *CSR {
	nnz := a.NNZ()
	rowPtr := make([]int, a.Cols+1)
	for _, j := range a.ColInd {
		rowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colInd := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, a.Cols)
	copy(next, rowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.RowView(i)
		for p, j := range cols {
			q := next[j]
			next[j]++
			colInd[q] = i
			val[q] = vals[p]
		}
	}
	return &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: rowPtr, ColInd: colInd, Val: val}
}

// mulGrain returns the row grain for a CSR product with out-width w:
// the per-row cost is ~2·(nnz/rows)·w flops on average.
func mulGrain(a *CSR, w int) int {
	perRow := 2 * (a.NNZ()/a.Rows + 1) * w
	return parallel.Grain(perRow)
}

// MulDense returns the product a·b for a dense right operand. Output rows
// are sharded on the shared worker pool; within a row the stored entries
// are scanned in ascending column order — the term order of matrix.Mul —
// so for finite operands the result is bitwise identical to
// matrix.Mul(a.ToDense(), b) for any worker count (the terms a CSR omits
// add exactly ±0 in the dense kernel).
func MulDense(a *CSR, b *matrix.Dense) *matrix.Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDense: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := matrix.New(a.Rows, b.Cols)
	parallel.For(a.Rows, mulGrain(a, b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := a.RowView(i)
			orow := out.RowView(i)
			for p, k := range cols {
				av := vals[p]
				if av == 0 {
					continue
				}
				brow := b.RowView(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// Mul returns the product a·b of two CSR matrices as a dense matrix (the
// products this package serves — Gram matrices, factor projections — are
// dense even when both operands are sparse). Zero stored values of a are
// skipped, and b contributes only its stored entries; every term either
// skip drops would add exactly ±0 in matrix.Mul, so for finite operands
// the result compares equal elementwise to matrix.Mul of the dense
// expansions — only the sign of a zero can differ.
func Mul(a, b *CSR) *matrix.Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul: %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := matrix.New(a.Rows, b.Cols)
	avgRowNNZ := b.NNZ()/b.Rows + 1
	parallel.For(a.Rows, mulGrain(a, avgRowNNZ), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := a.RowView(i)
			orow := out.RowView(i)
			for p, k := range cols {
				av := vals[p]
				if av == 0 {
					continue
				}
				bcols, bvals := b.RowView(k)
				for q, j := range bcols {
					orow[j] += av * bvals[q]
				}
			}
		}
	})
	return out
}

// TMul returns aᵀ·b as a dense matrix — the transpose product of the
// Gram step (M†ᵀ·M† splits into endpoint products of this shape). It is
// computed as Mul(a.T(), b): the counting transpose keeps each output
// element's accumulation in ascending original-row order, matching
// matrix.TMul's fixed k order.
func TMul(a, b *CSR) *matrix.Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TMul: (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return Mul(a.T(), b)
}

// TMulDense returns aᵀ·b for a dense right operand, bitwise identical to
// matrix.TMul(a.ToDense(), b).
func TMulDense(a *CSR, b *matrix.Dense) *matrix.Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TMulDense: (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return MulDense(a.T(), b)
}
