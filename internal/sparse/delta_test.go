package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
)

func randomICSR(rows, cols, nnz int, rng *rand.Rand) *ICSR {
	m := imatrix.New(rows, cols)
	for k := 0; k < nnz; k++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		lo := rng.NormFloat64()
		m.Lo.Set(i, j, lo)
		m.Hi.Set(i, j, lo+rng.Float64())
	}
	return FromIMatrix(m)
}

// TestApplyPatchMatchesDense: patching the ICSR equals patching the
// dense expansion cell-for-cell, for stored and unstored targets.
func TestApplyPatchMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomICSR(12, 9, 30, rng)
	want := a.ToIMatrix()
	patch := []ITriplet{
		{Row: 0, Col: 0, Lo: 5, Hi: 6},      // likely unstored corner
		{Row: 3, Col: 4, Lo: -1, Hi: 1},     // arbitrary cell
		{Row: 11, Col: 8, Lo: 2.5, Hi: 2.5}, // last cell
		{Row: 7, Col: 2, Lo: 0, Hi: 0},      // explicit observed zero
	}
	for _, p := range patch {
		want.Lo.Set(p.Row, p.Col, p.Lo)
		want.Hi.Set(p.Row, p.Col, p.Hi)
	}
	got, err := a.ApplyPatch(patch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			g := got.At(i, j)
			if g.Lo != want.Lo.At(i, j) || g.Hi != want.Hi.At(i, j) {
				t.Fatalf("cell (%d,%d): got [%g,%g] want [%g,%g]", i, j, g.Lo, g.Hi, want.Lo.At(i, j), want.Hi.At(i, j))
			}
		}
	}
	// The [0,0] patch must be STORED (observed zero), not dropped.
	found := false
	cols, lo, hi := got.RowView(7)
	for p, c := range cols {
		if c == 2 && lo[p] == 0 && hi[p] == 0 {
			found = true
		}
	}
	if !found {
		t.Error("explicit [0,0] patch was not stored")
	}
	// Structure stays valid CSR (strictly ascending columns).
	for i := 0; i < got.Rows; i++ {
		cs, _, _ := got.RowView(i)
		for p := 1; p < len(cs); p++ {
			if cs[p] <= cs[p-1] {
				t.Fatalf("row %d: columns not strictly ascending", i)
			}
		}
	}
	// The original is untouched.
	orig := randomICSR(12, 9, 30, rand.New(rand.NewSource(41)))
	for p := range a.Lo {
		if a.Lo[p] != orig.Lo[p] || a.Hi[p] != orig.Hi[p] || a.ColInd[p] != orig.ColInd[p] {
			t.Fatal("ApplyPatch mutated its receiver")
		}
	}
}

func TestApplyPatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomICSR(5, 5, 8, rng)
	if _, err := a.ApplyPatch([]ITriplet{{Row: 5, Col: 0}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := a.ApplyPatch([]ITriplet{{Row: 0, Col: -1}}); err == nil {
		t.Error("negative col accepted")
	}
	if _, err := a.ApplyPatch([]ITriplet{{Row: 1, Col: 1, Lo: 1, Hi: 1}, {Row: 1, Col: 1, Lo: 2, Hi: 2}}); err == nil {
		t.Error("duplicate patch cell accepted")
	}
}

func TestAppendRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randomICSR(6, 8, 20, rng)
	b := randomICSR(3, 8, 10, rng)
	rowsOut, err := AppendRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rowsOut.Rows != 9 || rowsOut.Cols != 8 || rowsOut.NNZ() != a.NNZ()+b.NNZ() {
		t.Fatalf("AppendRows shape/nnz wrong: %dx%d nnz %d", rowsOut.Rows, rowsOut.Cols, rowsOut.NNZ())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if rowsOut.At(i, j) != a.At(i, j) {
				t.Fatalf("AppendRows changed base cell (%d,%d)", i, j)
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			if rowsOut.At(6+i, j) != b.At(i, j) {
				t.Fatalf("AppendRows misplaced new cell (%d,%d)", i, j)
			}
		}
	}

	c := randomICSR(6, 4, 9, rng)
	colsOut, err := AppendCols(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if colsOut.Rows != 6 || colsOut.Cols != 12 || colsOut.NNZ() != a.NNZ()+c.NNZ() {
		t.Fatalf("AppendCols shape/nnz wrong: %dx%d nnz %d", colsOut.Rows, colsOut.Cols, colsOut.NNZ())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if colsOut.At(i, j) != a.At(i, j) {
				t.Fatalf("AppendCols changed base cell (%d,%d)", i, j)
			}
		}
		for j := 0; j < 4; j++ {
			if colsOut.At(i, 8+j) != c.At(i, j) {
				t.Fatalf("AppendCols misplaced new cell (%d,%d)", i, j)
			}
		}
	}

	if _, err := AppendRows(a, c); err == nil {
		t.Error("AppendRows accepted mismatched cols")
	}
	if _, err := AppendCols(a, b); err == nil {
		t.Error("AppendCols accepted mismatched rows")
	}
}
