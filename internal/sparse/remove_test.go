package sparse

import (
	"math/rand"
	"testing"
)

// TestApplyUnpatchMatchesDense: tombstoning stored cells equals zeroing
// them in the dense expansion, the storage shrinks by exactly the
// tombstone count, and the receiver is untouched.
func TestApplyUnpatchMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomICSR(12, 9, 40, rng)
	// Pick three stored cells (first of rows 2, 5, 9 — dense enough at
	// nnz 40 that those rows are occupied for this seed).
	var cells []Cell
	for _, i := range []int{2, 5, 9} {
		cols, _, _ := a.RowView(i)
		if len(cols) == 0 {
			t.Fatalf("seed row %d empty; pick another seed", i)
		}
		cells = append(cells, Cell{Row: i, Col: cols[0]})
	}
	got, err := a.ApplyUnpatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != a.NNZ()-len(cells) {
		t.Fatalf("NNZ %d, want %d", got.NNZ(), a.NNZ()-len(cells))
	}
	dead := make(map[Cell]bool, len(cells))
	for _, c := range cells {
		dead[c] = true
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			want := a.At(i, j)
			if dead[Cell{Row: i, Col: j}] {
				want.Lo, want.Hi = 0, 0
			}
			if got.At(i, j) != want {
				t.Fatalf("cell (%d,%d) after unpatch: %v", i, j, got.At(i, j))
			}
		}
		// Tombstoned cells revert to UNOBSERVED: no storage remains.
		cols, _, _ := got.RowView(i)
		for _, j := range cols {
			if dead[Cell{Row: i, Col: j}] {
				t.Fatalf("tombstoned cell (%d,%d) still stored", i, j)
			}
		}
	}
	orig := randomICSR(12, 9, 40, rand.New(rand.NewSource(53)))
	for p := range a.Lo {
		if a.Lo[p] != orig.Lo[p] || a.ColInd[p] != orig.ColInd[p] {
			t.Fatal("ApplyUnpatch mutated its receiver")
		}
	}
}

func TestApplyUnpatchErrors(t *testing.T) {
	a, err := FromICOO(4, 3, []ITriplet{
		{Row: 0, Col: 0, Lo: 1, Hi: 2},
		{Row: 2, Col: 1, Lo: 0, Hi: 0}, // stored explicit zero
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stored explicit zero is removable — storedness, not value,
	// decides.
	if _, err := a.ApplyUnpatch([]Cell{{Row: 2, Col: 1}}); err != nil {
		t.Errorf("tombstone for stored zero rejected: %v", err)
	}
	for name, cells := range map[string][]Cell{
		"never-inserted": {{Row: 1, Col: 1}},
		"out-of-range":   {{Row: 4, Col: 0}},
		"negative":       {{Row: 0, Col: -1}},
		"duplicate":      {{Row: 0, Col: 0}, {Row: 0, Col: 0}},
	} {
		if _, err := a.ApplyUnpatch(cells); err == nil {
			t.Errorf("ApplyUnpatch accepted %s tombstone", name)
		}
	}
}

// TestScale: every stored endpoint scales, structure is shared, and
// non-positive or infinite factors are rejected.
func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	a := randomICSR(8, 6, 20, rng)
	got, err := a.Scale(0.25)
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Lo {
		if got.Lo[p] != 0.25*a.Lo[p] || got.Hi[p] != 0.25*a.Hi[p] {
			t.Fatalf("entry %d: [%g,%g], want [%g,%g]", p, got.Lo[p], got.Hi[p], 0.25*a.Lo[p], 0.25*a.Hi[p])
		}
	}
	if &got.RowPtr[0] != &a.RowPtr[0] {
		t.Error("Scale copied the index structure; it should be shared")
	}
	for _, bad := range []float64{0, -1, mathInf()} {
		if _, err := a.Scale(bad); err == nil {
			t.Errorf("Scale(%g) accepted", bad)
		}
	}
}

func mathInf() float64 { x := 1.0; return x / (x - 1) }

// TestRemoveRowsCols: removals against the dense expansion, with
// surviving indices shifted and the index-set validation enforced.
func TestRemoveRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randomICSR(9, 7, 25, rng)

	rows := []int{8, 0, 4} // any order
	gotR, err := a.RemoveRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Rows != 6 || gotR.Cols != 7 {
		t.Fatalf("RemoveRows shape %dx%d", gotR.Rows, gotR.Cols)
	}
	out := 0
	for i := 0; i < 9; i++ {
		if i == 0 || i == 4 || i == 8 {
			continue
		}
		for j := 0; j < 7; j++ {
			if gotR.At(out, j) != a.At(i, j) {
				t.Fatalf("surviving row %d (was %d) cell %d differs", out, i, j)
			}
		}
		out++
	}

	cols := []int{6, 2}
	gotC, err := a.RemoveCols(cols)
	if err != nil {
		t.Fatal(err)
	}
	if gotC.Rows != 9 || gotC.Cols != 5 {
		t.Fatalf("RemoveCols shape %dx%d", gotC.Rows, gotC.Cols)
	}
	for i := 0; i < 9; i++ {
		out := 0
		for j := 0; j < 7; j++ {
			if j == 2 || j == 6 {
				continue
			}
			if gotC.At(i, out) != a.At(i, j) {
				t.Fatalf("surviving col %d (was %d) row %d differs", out, j, i)
			}
			out++
		}
	}

	for name, idx := range map[string][]int{
		"empty":        {},
		"out-of-range": {9},
		"duplicate":    {1, 1},
		"remove-all":   {0, 1, 2, 3, 4, 5, 6, 7, 8},
	} {
		if _, err := a.RemoveRows(idx); err == nil {
			t.Errorf("RemoveRows accepted %s index set", name)
		}
	}
	if _, err := a.RemoveCols([]int{7}); err == nil {
		t.Error("RemoveCols accepted out-of-range index")
	}
}
