package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Decremental merges for the sliding-window paths. Like the operations
// in delta.go these are serial index-ordered sweeps over the stored
// entries — O(NNZ + delta), immutable inputs, trivially deterministic.

// Cell addresses one matrix cell; it is the payload of a tombstone
// record (a deletion has no value, only a position).
type Cell struct {
	Row, Col int
}

// ApplyUnpatch returns a new ICSR with the given cells deleted (the
// cell reverts to "unobserved"). Every tombstoned cell must currently
// be stored: a tombstone for a never-inserted cell is an error, since
// it means the stream and the model disagree about history. Duplicate
// cells within one batch and out-of-range indices are also errors.
func (a *ICSR) ApplyUnpatch(cells []Cell) (*ICSR, error) {
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	sort.Slice(sorted, func(x, y int) bool {
		if sorted[x].Row != sorted[y].Row {
			return sorted[x].Row < sorted[y].Row
		}
		return sorted[x].Col < sorted[y].Col
	})
	for k, c := range sorted {
		if c.Row < 0 || c.Row >= a.Rows || c.Col < 0 || c.Col >= a.Cols {
			return nil, fmt.Errorf("sparse: ApplyUnpatch: cell (%d, %d) outside %dx%d", c.Row, c.Col, a.Rows, a.Cols)
		}
		if k > 0 && c.Row == sorted[k-1].Row && c.Col == sorted[k-1].Col {
			return nil, fmt.Errorf("sparse: ApplyUnpatch: duplicate cell (%d, %d)", c.Row, c.Col)
		}
	}
	out := &ICSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColInd: make([]int, 0, a.NNZ()-len(sorted)),
		Lo:     make([]float64, 0, a.NNZ()-len(sorted)),
		Hi:     make([]float64, 0, a.NNZ()-len(sorted)),
	}
	p := 0 // next tombstone
	for i := 0; i < a.Rows; i++ {
		cols, lo, hi := a.RowView(i)
		for q, j := range cols {
			if p < len(sorted) && sorted[p].Row == i && sorted[p].Col == j {
				p++ // deleted
				continue
			}
			out.ColInd = append(out.ColInd, j)
			out.Lo = append(out.Lo, lo[q])
			out.Hi = append(out.Hi, hi[q])
		}
		if p < len(sorted) && sorted[p].Row == i {
			c := sorted[p]
			return nil, fmt.Errorf("sparse: ApplyUnpatch: tombstone for never-inserted cell (%d, %d)", c.Row, c.Col)
		}
		out.RowPtr[i+1] = len(out.ColInd)
	}
	return out, nil
}

// Scale returns the matrix with every stored endpoint multiplied by
// c, which must be positive and finite so interval order is preserved.
// The immutable index structure is shared with a; the value arrays are
// fresh. Forgetting-factor decay (internal/core Delta.Forget) uses this
// to keep the authoritative matrix consistent with the decayed factor
// states, so a later refresh re-solves the decayed data, not the
// original.
func (a *ICSR) Scale(c float64) (*ICSR, error) {
	if !(c > 0) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("sparse: Scale: factor %v outside (0, +Inf)", c)
	}
	lo := make([]float64, len(a.Lo))
	hi := make([]float64, len(a.Hi))
	for p, v := range a.Lo {
		lo[p] = c * v
	}
	for p, v := range a.Hi {
		hi[p] = c * v
	}
	return &ICSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColInd: a.ColInd, Lo: lo, Hi: hi}, nil
}

// checkRemovalIndices validates a removal index set against a dimension
// and returns it sorted ascending. The set must be non-empty, in range,
// duplicate-free, and strictly smaller than the dimension (removing
// every row or column leaves no matrix).
func checkRemovalIndices(op string, idx []int, dim int) ([]int, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("sparse: %s: empty index set", op)
	}
	if len(idx) >= dim {
		return nil, fmt.Errorf("sparse: %s: removing %d of %d", op, len(idx), dim)
	}
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Ints(sorted)
	for k, i := range sorted {
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("sparse: %s: index %d outside [0, %d)", op, i, dim)
		}
		if k > 0 && i == sorted[k-1] {
			return nil, fmt.Errorf("sparse: %s: duplicate index %d", op, i)
		}
	}
	return sorted, nil
}

// RemoveRows returns a new ICSR with the given rows deleted; surviving
// rows keep their relative order (row i > removed rows shifts up by the
// number of removed rows before it). Indices may arrive in any order;
// duplicates, out-of-range indices, and removing every row are errors.
func (a *ICSR) RemoveRows(idx []int) (*ICSR, error) {
	sorted, err := checkRemovalIndices("RemoveRows", idx, a.Rows)
	if err != nil {
		return nil, err
	}
	out := &ICSR{
		Rows:   a.Rows - len(sorted),
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows-len(sorted)+1),
		ColInd: make([]int, 0, a.NNZ()),
		Lo:     make([]float64, 0, a.NNZ()),
		Hi:     make([]float64, 0, a.NNZ()),
	}
	p, r := 0, 0 // next removal index, next output row
	for i := 0; i < a.Rows; i++ {
		if p < len(sorted) && sorted[p] == i {
			p++
			continue
		}
		cols, lo, hi := a.RowView(i)
		out.ColInd = append(out.ColInd, cols...)
		out.Lo = append(out.Lo, lo...)
		out.Hi = append(out.Hi, hi...)
		r++
		out.RowPtr[r] = len(out.ColInd)
	}
	return out, nil
}

// RemoveCols returns a new ICSR with the given columns deleted;
// surviving columns keep their relative order and shift left past the
// removed ones. Same index validation as RemoveRows.
func (a *ICSR) RemoveCols(idx []int) (*ICSR, error) {
	sorted, err := checkRemovalIndices("RemoveCols", idx, a.Cols)
	if err != nil {
		return nil, err
	}
	// shift[j] = number of removed columns <= j; removed columns are
	// marked with -1.
	shift := make([]int, a.Cols)
	p, n := 0, 0
	for j := 0; j < a.Cols; j++ {
		if p < len(sorted) && sorted[p] == j {
			shift[j] = -1
			p++
			n++
			continue
		}
		shift[j] = n
	}
	out := &ICSR{
		Rows:   a.Rows,
		Cols:   a.Cols - len(sorted),
		RowPtr: make([]int, a.Rows+1),
		ColInd: make([]int, 0, a.NNZ()),
		Lo:     make([]float64, 0, a.NNZ()),
		Hi:     make([]float64, 0, a.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		cols, lo, hi := a.RowView(i)
		for q, j := range cols {
			if shift[j] < 0 {
				continue
			}
			out.ColInd = append(out.ColInd, j-shift[j])
			out.Lo = append(out.Lo, lo[q])
			out.Hi = append(out.Hi, hi[q])
		}
		out.RowPtr[i+1] = len(out.ColInd)
	}
	return out, nil
}
