package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/imatrix"
	"repro/internal/matrix"
)

func randSparseICSR(rng *rand.Rand, rows, cols int, density float64, signed bool) *ICSR {
	var ts []ITriplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() >= density {
				continue
			}
			v := rng.Float64()*4 + 1
			if signed && rng.Float64() < 0.5 {
				v = -v
			}
			ts = append(ts, ITriplet{Row: i, Col: j, Lo: v, Hi: v + rng.Float64()})
		}
	}
	m, err := FromICOO(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestMulDenseIntoMatchesMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSparseICSR(rng, 30, 50, 0.1, true).LoCSR()
	b := matrix.New(50, 7)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	want := MulDense(a, b)
	dst := matrix.New(30, 7)
	for i := range dst.Data {
		dst.Data[i] = 1e9 // must be overwritten, not accumulated into
	}
	got := MulDenseInto(dst, a, b)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("element %d: %v vs %v", i, got.Data[i], v)
		}
	}
}

// TestOperatorMatchesDenseKernels pins the operator contract the
// truncated solvers rely on: Apply/ApplyT are bitwise identical to the
// dense blocked kernels on the dense expansion.
func TestOperatorMatchesDenseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sm := randSparseICSR(rng, 40, 60, 0.08, true)
	a := sm.LoCSR()
	ad := a.ToDense()
	op := NewOperator(a)
	if r, c := op.Dims(); r != 40 || c != 60 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	x := matrix.New(60, 9)
	y := matrix.New(40, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	got := matrix.New(40, 9)
	op.Apply(got, x)
	want := matrix.Mul(ad, x)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("Apply element %d differs bitwise: %v vs %v", i, got.Data[i], v)
		}
	}
	gotT := matrix.New(60, 9)
	op.ApplyT(gotT, y)
	wantT := matrix.TMul(ad, y)
	for i, v := range wantT.Data {
		if gotT.Data[i] != v {
			t.Fatalf("ApplyT element %d differs bitwise: %v vs %v", i, gotT.Data[i], v)
		}
	}
}

func TestMidCSRAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pos := randSparseICSR(rng, 10, 12, 0.3, false)
	if !pos.NonNegative() {
		t.Error("positive matrix reported negative")
	}
	neg := randSparseICSR(rng, 10, 12, 0.3, true)
	hasNeg := false
	for _, lo := range neg.Lo {
		if lo < 0 {
			hasNeg = true
		}
	}
	if hasNeg && neg.NonNegative() {
		t.Error("signed matrix reported non-negative")
	}
	mid := pos.MidCSR()
	want := pos.ToIMatrix().Mid()
	if got := mid.ToDense(); !matrix.Equal(got, want, 0) {
		t.Error("MidCSR disagrees with the dense midpoint")
	}
	// Shared index structure, fresh values.
	if &mid.ColInd[0] != &pos.ColInd[0] {
		t.Error("MidCSR copied the index structure")
	}
	mid.Val[0] = 1e18
	if pos.Lo[0] == 1e18 || pos.Hi[0] == 1e18 {
		t.Error("MidCSR aliases the endpoint arrays")
	}
}

// TestMulDenseEndpointsMatchesIMatrix pins the fused scalar-left endpoint
// product against the dense imatrix kernel on the dense expansion.
func TestMulDenseEndpointsMatchesIMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, workers := range []int{1, 3, 8} {
		sm := randSparseICSR(rng, 35, 55, 0.12, true)
		s := matrix.New(6, 35)
		for i := range s.Data {
			s.Data[i] = rng.NormFloat64()
		}
		want := imatrix.MulEndpointsScalarLeft(s, sm.ToIMatrix())
		var got *imatrix.IMatrix
		withWorkers(workers, func() { got = MulDenseEndpoints(s, sm) })
		for i, v := range want.Lo.Data {
			if got.Lo.Data[i] != v {
				t.Fatalf("workers=%d: Lo[%d] %v vs %v", workers, i, got.Lo.Data[i], v)
			}
		}
		for i, v := range want.Hi.Data {
			if got.Hi.Data[i] != v {
				t.Fatalf("workers=%d: Hi[%d] %v vs %v", workers, i, got.Hi.Data[i], v)
			}
		}
	}
}
