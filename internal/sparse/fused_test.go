package sparse

// Tests for the fused ICSR endpoint kernels: the shared-structure
// transpose and the no-dense-temporary allocation contract. Elementwise
// equivalence against the dense imatrix path is pinned across densities
// and worker counts in property_test.go.

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// TestICSRTransposeSharedStructure pins that ICSR.T moves both endpoint
// arrays through one counting transpose: it must agree entry-for-entry
// with transposing the Lo and Hi CSR views separately.
func TestICSRTransposeSharedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, density := range densities {
		m := randIMatrix(rng, 37, 23, density)
		a := FromIMatrix(m)
		at := a.T()
		if at.Rows != a.Cols || at.Cols != a.Rows {
			t.Fatalf("T: shape %dx%d, want %dx%d", at.Rows, at.Cols, a.Cols, a.Rows)
		}
		loT, hiT := a.LoCSR().T(), a.HiCSR().T()
		for i := 0; i <= at.Rows; i++ {
			if at.RowPtr[i] != loT.RowPtr[i] {
				t.Fatalf("T: RowPtr[%d] = %d, want %d", i, at.RowPtr[i], loT.RowPtr[i])
			}
		}
		for p := range at.ColInd {
			if at.ColInd[p] != loT.ColInd[p] || at.Lo[p] != loT.Val[p] || at.Hi[p] != hiT.Val[p] {
				t.Fatalf("T: entry %d = (%d, %v, %v), want (%d, %v, %v)",
					p, at.ColInd[p], at.Lo[p], at.Hi[p], loT.ColInd[p], loT.Val[p], hiT.Val[p])
			}
		}
		// Round trip through the dense expansion.
		imatrixEqual(t, "T-dense", at.ToIMatrix(), m.T())
	}
}

// TestFusedSparseGramAllocations pins that GramEndpoints no longer
// materializes four dense temporaries: beyond the output interval
// matrix and the one shared-structure transpose, only O(cols) per-shard
// scratch is allocated.
func TestFusedSparseGramAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m := randIMatrix(rng, 120, 60, 0.1)
	a := FromIMatrix(m)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	allocs := testing.AllocsPerRun(10, func() {
		GramEndpoints(a)
	})
	// Output (2 Dense + backing + IMatrix), transpose arrays, two
	// scratch rows, pool closure. The unfused version allocated four
	// dense 60x60 products, two CSR transposes, and combine outputs —
	// 25+ objects.
	if allocs > 20 {
		t.Fatalf("GramEndpoints allocated %.0f objects per run, want <= 20", allocs)
	}
	s := randDense(rng, 60, 20, 1)
	allocs = testing.AllocsPerRun(10, func() {
		MulEndpointsDense(a, s)
	})
	if allocs > 12 {
		t.Fatalf("MulEndpointsDense allocated %.0f objects per run, want <= 12", allocs)
	}
}
