package recommend

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ipmf"
)

// TestFromSparseDecomposition pins that wrapping an existing
// decomposition serves bitwise what BuildSparseISVD serves for the same
// input — the serving tier builds snapshots from decompositions it
// already holds, and those snapshots must predict identically.
func TestFromSparseDecomposition(t *testing.T) {
	r := sparseRatings(t, 11)
	opts := core.Options{Rank: 3, Target: core.TargetB}
	d, err := core.DecomposeSparse(r, core.ISVD4, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromSparseDecomposition(d, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildSparseISVD(r, core.ISVD4, opts, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != ref.Rows() || p.Cols() != ref.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", p.Rows(), p.Cols(), ref.Rows(), ref.Cols())
	}
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			got, err := p.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cell (%d, %d): %v, want %v", i, j, got, want)
			}
		}
	}
	if p.Decomposition() != d {
		t.Fatalf("Decomposition() does not return the wrapped decomposition")
	}
}

// TestDecompositionAccessorNonFactorBackend pins the nil contract for
// predictors that do not wrap an ISVD decomposition.
func TestDecompositionAccessorNonFactorBackend(t *testing.T) {
	r := sparseRatings(t, 12)
	p, err := BuildSparse(r, ipmf.Config{Rank: 3, Epochs: 5, LearningRate: 0.01},
		rand.New(rand.NewSource(1)), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Decomposition() != nil {
		t.Fatalf("AI-PMF predictor reports a decomposition")
	}
}
