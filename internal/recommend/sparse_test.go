package recommend

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ipmf"
	"repro/internal/sparse"
)

func sparseRatings(t *testing.T, seed int64) *sparse.ICSR {
	t.Helper()
	m, _ := ratingMatrix(t, seed)
	return sparse.FromIMatrix(m)
}

func TestBuildSparsePredicts(t *testing.T) {
	r := sparseRatings(t, 6)
	cfg := ipmf.Config{Rank: 4, Epochs: 20, LearningRate: 0.01}
	p, err := BuildSparse(r, cfg, rand.New(rand.NewSource(1)), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != r.Rows || p.Cols() != r.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", p.Rows(), p.Cols(), r.Rows, r.Cols)
	}
	for _, idx := range [][2]int{{0, 0}, {r.Rows - 1, r.Cols - 1}} {
		iv, err := p.PredictInterval(idx[0], idx[1])
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo < 1 || iv.Hi > 5 || iv.Lo > iv.Hi {
			t.Fatalf("interval %v outside scale or misordered", iv)
		}
	}
	if _, err := p.Predict(-1, 0); err == nil {
		t.Error("negative row accepted")
	}
}

// TestFactorSourceMatchesModel pins that the lazy factor source predicts
// exactly what the underlying model predicts (endpoints ordered).
func TestFactorSourceMatchesModel(t *testing.T) {
	r := sparseRatings(t, 7)
	cfg := ipmf.Config{Rank: 3, Epochs: 10, LearningRate: 0.01}
	m, err := ipmf.TrainAIPMFCSR(r, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	p := FromIntervalModel(m, 0, 0) // clamping disabled
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			iv, err := p.PredictInterval(i, j)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := m.PredictInterval(i, j)
			if iv.Lo != lo || iv.Hi != hi {
				t.Fatalf("(%d, %d): source %v vs model [%g, %g]", i, j, iv, lo, hi)
			}
		}
	}
}

func TestTopNSparseExcludesStoredCells(t *testing.T) {
	r := sparseRatings(t, 8)
	cfg := ipmf.Config{Rank: 4, Epochs: 20, LearningRate: 0.01}
	p, err := BuildSparse(r, cfg, rand.New(rand.NewSource(3)), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a user with at least one rated and one unrated genre.
	user := -1
	for i := 0; i < r.Rows; i++ {
		cols, _, _ := r.RowView(i)
		if len(cols) > 0 && len(cols) < r.Cols {
			user = i
			break
		}
	}
	if user < 0 {
		t.Skip("no user with mixed rated/unrated columns")
	}
	rated, _, _ := r.RowView(user)
	top, err := p.TopNSparse(user, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range top {
		for _, rc := range rated {
			if j == rc {
				t.Fatalf("rated column %d recommended", j)
			}
		}
	}

	if _, err := p.TopNSparse(-1, 2, r); err == nil {
		t.Error("negative row accepted")
	}
	// A stored [0, 0] cell is unobserved by the training convention, so
	// it must stay recommendable rather than be excluded.
	zr, err := sparse.FromICOO(r.Rows, r.Cols, []sparse.ITriplet{{Row: user, Col: rated[0], Lo: 0, Hi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	all, err := p.TopNSparse(user, r.Cols, zr)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != r.Cols {
		t.Errorf("stored [0,0] cell excluded from recommendations: got %d of %d columns", len(all), r.Cols)
	}
	other := &sparse.ICSR{Rows: r.Rows + 1, Cols: r.Cols, RowPtr: make([]int, r.Rows+2)}
	if _, err := p.TopNSparse(0, 2, other); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// TestBuildSparseISVDMatchesDense pins the lazy factor source of the
// ISVD-backed sparse recommender against the materialized reconstruction
// of the dense path, cell by cell, for every target.
func TestBuildSparseISVDMatchesDense(t *testing.T) {
	r := sparseRatings(t, 8)
	dense := r.ToIMatrix()
	for _, tgt := range []core.Target{core.TargetA, core.TargetB, core.TargetC} {
		opts := core.Options{Rank: 3, Target: tgt}
		sp, err := BuildSparseISVD(r, core.ISVD4, opts, 1, 5)
		if err != nil {
			t.Fatalf("target %v: %v", tgt, err)
		}
		dp, err := Build(dense, core.ISVD4, opts, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Rows() != dp.Rows() || sp.Cols() != dp.Cols() {
			t.Fatalf("target %v: shape mismatch", tgt)
		}
		for i := 0; i < sp.Rows(); i += 3 {
			for j := 0; j < sp.Cols(); j += 5 {
				siv, err := sp.PredictInterval(i, j)
				if err != nil {
					t.Fatal(err)
				}
				div, err := dp.PredictInterval(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(siv.Lo-div.Lo) > 1e-6 || math.Abs(siv.Hi-div.Hi) > 1e-6 {
					t.Fatalf("target %v cell (%d,%d): sparse %v vs dense %v", tgt, i, j, siv, div)
				}
			}
		}
		// TopNSparse must work over the lazy source (the dense user-genre
		// rows may have every column rated, so only the upper bound holds).
		st, err := sp.TopNSparse(0, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(st) > 3 {
			t.Fatalf("target %v: TopNSparse returned %d items", tgt, len(st))
		}
	}
}
