package recommend

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/imatrix"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func ratingsFixture(rows, cols, rho int, rng *rand.Rand) *sparse.ICSR {
	x := matrix.New(rows, rho)
	y := matrix.New(rho, cols)
	for i := range x.Data {
		x.Data[i] = math.Abs(rng.NormFloat64())
	}
	for i := range y.Data {
		y.Data[i] = math.Abs(rng.NormFloat64()) / float64(rho)
	}
	lo := matrix.Mul(x, y)
	return sparse.FromIMatrix(imatrix.FromEndpoints(lo, lo.Scale(1.25)))
}

func TestApplyDeltaRefreshesLivePredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ratings := ratingsFixture(30, 20, 3, rng)
	opts := core.Options{Rank: 8, Target: core.TargetB, Updatable: true}
	p, err := BuildSparseISVD(ratings, core.ISVD4, opts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Predict(4, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Edit one cell sharply and stream it in.
	old := ratings.At(4, 7)
	delta := core.Delta{Patch: []sparse.ITriplet{
		{Row: 4, Col: 7, Lo: old.Lo + 3, Hi: old.Hi + 3.5},
	}}
	if err := p.ApplyDelta(delta, core.Options{}); err != nil {
		t.Fatal(err)
	}
	after, err := p.Predict(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("prediction did not move with the delta: %g -> %g", before, after)
	}

	// The refreshed predictor matches one built from scratch on the
	// patched ratings.
	patched, err := ratings.ApplyPatch(delta.Patch)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildSparseISVD(patched, core.ISVD4, opts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range [][2]int{{4, 7}, {0, 0}, {29, 19}, {12, 3}} {
		a, _ := p.Predict(cell[0], cell[1])
		b, _ := fresh.Predict(cell[0], cell[1])
		if math.Abs(a-b) > 1e-6*math.Max(1, math.Abs(b)) {
			t.Fatalf("cell %v: live %g vs fresh %g", cell, a, b)
		}
	}
}

func TestApplyDeltaGrowsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	ratings := ratingsFixture(24, 16, 3, rng)
	opts := core.Options{Rank: 8, Target: core.TargetB, Updatable: true}
	p, err := BuildSparseISVD(ratings, core.ISVD2, opts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	newUsers := ratingsFixture(2, 16, 1, rng)
	if err := p.ApplyDelta(core.Delta{AppendRows: newUsers}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 26 || p.Cols() != 16 {
		t.Fatalf("predictor shape %dx%d after append, want 26x16", p.Rows(), p.Cols())
	}
	// The appended user is predictable immediately.
	if _, err := p.Predict(25, 3); err != nil {
		t.Fatal(err)
	}
	// TopN serves the new user too.
	top, err := p.TopN(25, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("TopN returned %d items for the appended user", len(top))
	}
}

func TestApplyDeltaRequiresUpdatable(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	ratings := ratingsFixture(20, 12, 3, rng)
	p, err := BuildSparseISVD(ratings, core.ISVD2, core.Options{Rank: 6, Target: core.TargetB}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = p.ApplyDelta(core.Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 1}}}, core.Options{})
	if err == nil {
		t.Fatal("ApplyDelta on a non-updatable predictor accepted")
	}
	// Predictor still serves.
	if _, perr := p.Predict(0, 0); perr != nil {
		t.Fatal(perr)
	}

	// Materialized-reconstruction predictors are rejected too.
	d, err := core.DecomposeSparse(ratings, core.ISVD2, core.Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	mp := FromDecomposition(d, 0, 0)
	if err := mp.ApplyDelta(core.Delta{Patch: []sparse.ITriplet{{Row: 0, Col: 0, Lo: 1, Hi: 1}}}, core.Options{}); err == nil {
		t.Fatal("ApplyDelta on a materialized predictor accepted")
	}
}

// TestTopNHeapMatchesReference pins the heap selection against a
// brute-force sort across sizes, exclusions, and tied values.
func TestTopNHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ratings := ratingsFixture(12, 40, 3, rng)
	p, err := BuildSparseISVD(ratings, core.ISVD2, core.Options{Rank: 6, Target: core.TargetB}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[int]bool{3: true, 17: true, 39: true}
	for _, n := range []int{0, 1, 2, 5, 37, 40, 100} {
		got, err := p.TopN(2, n, exclude)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: full sort by (midpoint desc, col asc).
		type cand struct {
			j int
			v float64
		}
		var ref []cand
		for j := 0; j < p.Cols(); j++ {
			if exclude[j] {
				continue
			}
			iv, _ := p.PredictInterval(2, j)
			ref = append(ref, cand{j, iv.Mid()})
		}
		sort.SliceStable(ref, func(a, b int) bool {
			if ref[a].v != ref[b].v {
				return ref[a].v > ref[b].v
			}
			return ref[a].j < ref[b].j
		})
		wantN := n
		if wantN > len(ref) {
			wantN = len(ref)
		}
		if len(got) != wantN {
			t.Fatalf("n=%d: got %d items, want %d", n, len(got), wantN)
		}
		for k := range got {
			if got[k] != ref[k].j {
				t.Fatalf("n=%d: item %d is col %d, want %d", n, k, got[k], ref[k].j)
			}
		}
	}
}

// TestTopNTies: a constant-valued region must surface in ascending
// column order, matching the pre-heap behavior.
func TestTopNTies(t *testing.T) {
	// A constant materialized source: every unexcluded column ties
	// exactly (bitwise), exercising the heap's tie ordering directly.
	lo := matrix.New(4, 9)
	for i := range lo.Data {
		lo.Data[i] = 2
	}
	p := &Predictor{src: imatrix.FromEndpoints(lo, lo.Clone())}
	top, err := p.TopN(1, 4, map[int]bool{0: true, 2: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4, 5}
	for k := range want {
		if top[k] != want[k] {
			t.Fatalf("tied TopN = %v, want %v", top, want)
		}
	}
}
