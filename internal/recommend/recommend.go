// Package recommend implements the reconstruction-based rating
// prediction of Section 6.5 of the paper: an interval-valued rating
// matrix (user-genre or user-item) is decomposed at low rank and the
// reconstruction M̃† supplies estimates for the cells — including the
// unobserved ones, which is what makes low-rank reconstruction a
// recommender. Predictions carry their interval, so callers can surface
// the model's imprecision alongside the point estimate.
//
// Two prediction backends share one Predictor API: a materialized
// interval reconstruction (Build/FromDecomposition — the paper's path)
// and trained AI-PMF factors (BuildSparse/FromIntervalModel), which
// compute each cell on demand from U_i·V†_j. The factor backend accepts
// sparse CSR ratings and never materializes a dense matrix — memory is
// O((rows+cols)·rank) instead of O(rows·cols), which is what makes it
// usable on realistically sparse rating corpora.
//
//ivmf:deterministic
package recommend

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/ipmf"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/sparse"
)

// source is a rating estimate provider: either a materialized
// reconstruction (*imatrix.IMatrix satisfies it directly) or a lazy
// factor product.
type source interface {
	Rows() int
	Cols() int
	At(i, j int) interval.Interval
}

// factorSource predicts from trained interval PMF factors on demand.
type factorSource struct{ m *ipmf.IntervalModel }

func (f factorSource) Rows() int { return f.m.U.Rows }
func (f factorSource) Cols() int { return f.m.VLo.Rows }
func (f factorSource) At(i, j int) interval.Interval {
	lo, hi := f.m.PredictInterval(i, j)
	return interval.Interval{Lo: lo, Hi: hi}
}

// Predictor predicts ratings from a low-rank interval source. All
// prediction methods (Predict, PredictInterval, TopN, TopNSparse) are
// safe for concurrent use; ApplyDelta mutates the predictor and needs
// external synchronization (see its doc).
type Predictor struct {
	src source
	// Min and Max clamp predictions to the rating scale; Max <= Min
	// disables clamping.
	Min, Max float64
}

// ErrShape is returned when prediction indices fall outside the matrix.
var ErrShape = errors.New("recommend: index out of range")

// Build decomposes the interval rating matrix with the given ISVD method
// and returns a Predictor over its reconstruction. Ratings on the 1..5
// scale should pass minRating=1, maxRating=5.
func Build(ratings *imatrix.IMatrix, method core.Method, opts core.Options, minRating, maxRating float64) (*Predictor, error) {
	d, err := core.Decompose(ratings, method, opts)
	if err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	return &Predictor{src: d.Reconstruct(), Min: minRating, Max: maxRating}, nil
}

// FromDecomposition wraps an existing decomposition.
func FromDecomposition(d *core.Decomposition, minRating, maxRating float64) *Predictor {
	return &Predictor{src: d.Reconstruct(), Min: minRating, Max: maxRating}
}

// FromIntervalModel wraps trained I-PMF/AI-PMF factors; every prediction
// is computed on demand as U_i·V†_j, so no dense matrix is materialized.
func FromIntervalModel(m *ipmf.IntervalModel, minRating, maxRating float64) *Predictor {
	return &Predictor{src: factorSource{m}, Min: minRating, Max: maxRating}
}

// BuildSparse trains AI-PMF on a sparse interval rating matrix and
// returns a factor-backed Predictor. Unlike Build it never densifies:
// training iterates the stored cells (O(NNZ) per epoch) and the
// predictor holds only the factors.
func BuildSparse(ratings *sparse.ICSR, cfg ipmf.Config, rng *rand.Rand, minRating, maxRating float64) (*Predictor, error) {
	m, err := ipmf.TrainAIPMFCSR(ratings, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	return FromIntervalModel(m, minRating, maxRating), nil
}

// decompSource predicts cells lazily from ISVD factors, reproducing
// Reconstruct's per-cell values (Supplementary Algorithms 12-14) without
// ever materializing the rows×cols reconstruction: memory stays
// O((rows+cols)·rank). For TargetB/C the factors are the averaged scalar
// U/V with the (interval) core diagonal; for TargetA the inner U†×Σ†
// endpoint product is a diagonal scaling precomputed per cell of U, and
// each lookup min/max-combines the four endpoint dot products of
// Algorithm 1 — the same candidate set the materialized path combines.
type decompSource struct {
	d *core.Decomposition
	// TargetB/C: scalar factors and core diagonals.
	u, v     *matrix.Dense
	sLo, sHi []float64
	// TargetA: W = U†×Σ† endpoint product (n×r) and V†.
	w, va *imatrix.IMatrix
}

func newDecompSource(d *core.Decomposition) (*decompSource, error) {
	s := &decompSource{d: d}
	switch d.Target {
	case core.TargetB, core.TargetC:
		s.u = d.U.Mid()
		s.v = d.V.Mid()
		s.sLo = d.Sigma.Lo.Diagonal()
		s.sHi = d.Sigma.Hi.Diagonal()
	case core.TargetA:
		if d.ExactAlgebra {
			return nil, fmt.Errorf("recommend: lazy TargetA prediction supports endpoint algebra only")
		}
		// Σ† is diagonal, so each W entry is the min/max over the four
		// endpoint scalar products of one U entry with one σ interval.
		r := d.Rank
		s.w = imatrix.New(d.U.Rows(), r)
		for i := 0; i < d.U.Rows(); i++ {
			for k := 0; k < r; k++ {
				ul, uh := d.U.Lo.At(i, k), d.U.Hi.At(i, k)
				gl, gh := d.Sigma.Lo.At(k, k), d.Sigma.Hi.At(k, k)
				p1, p2, p3, p4 := ul*gl, ul*gh, uh*gl, uh*gh
				s.w.Lo.Set(i, k, math.Min(math.Min(p1, p2), math.Min(p3, p4)))
				s.w.Hi.Set(i, k, math.Max(math.Max(p1, p2), math.Max(p3, p4)))
			}
		}
		s.va = d.V
	default:
		return nil, fmt.Errorf("recommend: unknown target %v", d.Target)
	}
	return s, nil
}

func (s *decompSource) Rows() int { return s.d.U.Rows() }
func (s *decompSource) Cols() int { return s.d.V.Rows() }

func (s *decompSource) At(i, j int) interval.Interval {
	switch s.d.Target {
	case core.TargetC:
		var p float64
		for k := 0; k < s.d.Rank; k++ {
			p += s.u.At(i, k) * ((s.sLo[k] + s.sHi[k]) / 2) * s.v.At(j, k)
		}
		return interval.Interval{Lo: p, Hi: p}
	case core.TargetB:
		var lo, hi float64
		for k := 0; k < s.d.Rank; k++ {
			uv := s.u.At(i, k) * s.v.At(j, k)
			lo += s.sLo[k] * uv
			hi += s.sHi[k] * uv
		}
		if lo > hi { // AverageReplace semantics of the materialized path
			m := (lo + hi) / 2
			return interval.Interval{Lo: m, Hi: m}
		}
		return interval.Interval{Lo: lo, Hi: hi}
	default: // TargetA, endpoint algebra
		var c11, c12, c21, c22 float64
		for k := 0; k < s.d.Rank; k++ {
			wl, wh := s.w.Lo.At(i, k), s.w.Hi.At(i, k)
			vl, vh := s.va.Lo.At(j, k), s.va.Hi.At(j, k)
			c11 += wl * vl
			c12 += wl * vh
			c21 += wh * vl
			c22 += wh * vh
		}
		lo := math.Min(math.Min(c11, c12), math.Min(c21, c22))
		hi := math.Max(math.Max(c11, c12), math.Max(c21, c22))
		return interval.Interval{Lo: lo, Hi: hi}
	}
}

// BuildSparseISVD decomposes sparse interval ratings with the selected
// ISVD method (core.DecomposeSparse: CSR kernels throughout; with the
// default auto solver the endpoint Gram matrices are applied matrix-free
// and never materialized) and returns a lazily-evaluating Predictor over
// the factor reconstruction — no rows×cols matrix is ever built, so
// memory stays O(NNZ + (rows+cols)·rank) end to end.
func BuildSparseISVD(ratings *sparse.ICSR, method core.Method, opts core.Options, minRating, maxRating float64) (*Predictor, error) {
	d, err := core.DecomposeSparse(ratings, method, opts)
	if err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	src, err := newDecompSource(d)
	if err != nil {
		return nil, err
	}
	return &Predictor{src: src, Min: minRating, Max: maxRating}, nil
}

// FromSparseDecomposition wraps an existing ISVD decomposition into a
// lazily-evaluating factor-backed Predictor — the BuildSparseISVD
// source without re-decomposing. Predictions are computed per cell from
// the factors (memory O((rows+cols)·rank), nothing dense is built),
// bitwise identical to what BuildSparseISVD would serve for the same
// decomposition. This is the serving tier's constructor: a job executor
// that already holds the (updatable) decomposition builds each snapshot
// predictor from it directly, and after a Decomposition.Update it wraps
// the returned decomposition for the swapped-in snapshot. TargetA
// decompositions must use endpoint algebra (the lazy source's only
// unsupported configuration is ExactAlgebra TargetA).
func FromSparseDecomposition(d *core.Decomposition, minRating, maxRating float64) (*Predictor, error) {
	src, err := newDecompSource(d)
	if err != nil {
		return nil, err
	}
	return &Predictor{src: src, Min: minRating, Max: maxRating}, nil
}

// Decomposition returns the decomposition backing a factor-backed ISVD
// predictor, or nil for other backends (materialized reconstructions,
// AI-PMF factors). The serving tier uses it to fold the next delta into
// the model a snapshot was built from.
func (p *Predictor) Decomposition() *core.Decomposition {
	if ds, ok := p.src.(*decompSource); ok {
		return ds.d
	}
	return nil
}

// ApplyDelta folds a batch of arriving ratings (new cells, edited
// cells, or appended users/items as rows/cols) into a live predictor
// without rebuilding it: the underlying updatable decomposition absorbs
// the delta through core's incremental factor-update engine
// (Decomposition.Update — O(delta)-shaped, not O(dataset)) and the
// predictor re-derives its lazy factor source from the result. Requires
// a factor-backed ISVD predictor built from an updatable decomposition
// (BuildSparseISVD with Options.Updatable). opts carries the update
// policy knobs (Refresh, RefreshBudget, Workers).
//
// On error the predictor is left unchanged; on success prediction shape
// may grow (appended rows/cols become predictable immediately).
//
// ApplyDelta mutates the predictor and must be externally synchronized
// with concurrent Predict/PredictInterval/TopN calls. For lock-free
// serving, update a decomposition on the side (it is functional — the
// old one keeps serving) and swap in a fresh predictor instead.
func (p *Predictor) ApplyDelta(delta core.Delta, opts core.Options) error {
	ds, ok := p.src.(*decompSource)
	if !ok {
		return fmt.Errorf("recommend: ApplyDelta requires a factor-backed ISVD predictor (BuildSparseISVD)")
	}
	d2, err := ds.d.Update(delta, opts)
	if err != nil {
		return fmt.Errorf("recommend: ApplyDelta: %w", err)
	}
	src, err := newDecompSource(d2)
	if err != nil {
		return fmt.Errorf("recommend: ApplyDelta: %w", err)
	}
	p.src = src
	return nil
}

// Rows and Cols report the prediction matrix shape.
func (p *Predictor) Rows() int { return p.src.Rows() }

// Cols reports the prediction matrix width.
func (p *Predictor) Cols() int { return p.src.Cols() }

// PredictInterval returns the interval estimate for cell (i, j), clamped
// to the rating scale.
func (p *Predictor) PredictInterval(i, j int) (interval.Interval, error) {
	if i < 0 || i >= p.src.Rows() || j < 0 || j >= p.src.Cols() {
		return interval.Interval{}, fmt.Errorf("%w: (%d, %d) in %dx%d", ErrShape, i, j, p.src.Rows(), p.src.Cols())
	}
	iv := p.src.At(i, j)
	if p.Max > p.Min {
		iv = iv.Clamp(p.Min, p.Max)
	}
	return iv, nil
}

// Predict returns the midpoint estimate for cell (i, j).
func (p *Predictor) Predict(i, j int) (float64, error) {
	iv, err := p.PredictInterval(i, j)
	if err != nil {
		return 0, err
	}
	return iv.Mid(), nil
}

// topCand is one entry of TopN's bounded selection heap.
type topCand struct {
	j int
	v float64
}

// worseThan orders the selection heap: the root is the candidate to
// evict. Lower midpoint is worse; on ties the larger column index is
// worse, so equal-valued predictions surface in ascending column order —
// the ordering of the pre-heap selection-sort implementation.
func (a topCand) worseThan(b topCand) bool {
	return a.v < b.v || (a.v == b.v && a.j > b.j)
}

// topScratchPool recycles TopN selection heaps across calls and
// goroutines: the serving path stays allocation-free (beyond the result
// slice) without giving up the Predictor's concurrent-use contract.
var topScratchPool = sync.Pool{New: func() any {
	s := make([]topCand, 0, 64)
	return &s
}}

// TopN returns the column indices of the n highest midpoint predictions
// in row i, excluding the given already-rated columns. It keeps a
// size-n min-heap over the scanned columns (O(cols·log n), preallocated
// scratch reused across calls) instead of materializing and
// selection-sorting every candidate — the difference between O(cols)
// transient garbage per request and none, on the hot serving path.
func (p *Predictor) TopN(i, n int, exclude map[int]bool) ([]int, error) {
	return p.topNSkip(i, n, func(j int) bool { return exclude[j] })
}

// topNSkip is the heap-selection core of TopN/TopNSparse; skip is
// queried once per column in ascending order.
func (p *Predictor) topNSkip(i, n int, skip func(j int) bool) ([]int, error) {
	if i < 0 || i >= p.src.Rows() {
		return nil, fmt.Errorf("%w: row %d", ErrShape, i)
	}
	if n < 0 {
		n = 0
	}
	sp := topScratchPool.Get().(*[]topCand)
	h := (*sp)[:0]
	for j := 0; j < p.src.Cols(); j++ {
		if skip(j) {
			continue
		}
		iv, _ := p.PredictInterval(i, j)
		c := topCand{j: j, v: iv.Mid()}
		if len(h) < n {
			h = append(h, c)
			siftUp(h, len(h)-1)
			continue
		}
		if n == 0 || !h[0].worseThan(c) {
			continue
		}
		h[0] = c
		siftDown(h, 0)
	}
	// Drain the heap worst-first into the output back-to-front: the
	// result descends by midpoint, ascending column on ties.
	out := make([]int, len(h))
	full := h
	for k := len(h) - 1; k >= 0; k-- {
		out[k] = h[0].j
		h[0] = h[k]
		h = h[:k]
		siftDown(h, 0)
	}
	*sp = full[:0]
	topScratchPool.Put(sp)
	return out, nil
}

func siftUp(h []topCand, k int) {
	for k > 0 {
		parent := (k - 1) / 2
		if !h[k].worseThan(h[parent]) {
			return
		}
		h[k], h[parent] = h[parent], h[k]
		k = parent
	}
}

func siftDown(h []topCand, k int) {
	for {
		worst := k
		if l := 2*k + 1; l < len(h) && h[l].worseThan(h[worst]) {
			worst = l
		}
		if r := 2*k + 2; r < len(h) && h[r].worseThan(h[worst]) {
			worst = r
		}
		if worst == k {
			return
		}
		h[k], h[worst] = h[worst], h[k]
		k = worst
	}
}

// TopNSparse is TopN with the exclusion set taken from the stored cells
// of row i of the sparse ratings — the columns the user already rated —
// so callers holding CSR ratings don't build an exclusion map by hand.
func (p *Predictor) TopNSparse(i, n int, ratings *sparse.ICSR) ([]int, error) {
	if ratings.Rows != p.src.Rows() || ratings.Cols != p.src.Cols() {
		return nil, fmt.Errorf("%w: ratings %dx%d vs predictor %dx%d",
			ErrShape, ratings.Rows, ratings.Cols, p.src.Rows(), p.src.Cols())
	}
	if i < 0 || i >= ratings.Rows {
		return nil, fmt.Errorf("%w: row %d", ErrShape, i)
	}
	// The stored columns are sorted ascending and topNSkip queries
	// columns in ascending order, so one advancing pointer replaces an
	// exclusion map — no per-call transient allocation on this serving
	// path. Explicitly stored [0, 0] cells are unobserved (the training
	// convention of ipmf), so they stay recommendable.
	cols, lo, hi := ratings.RowView(i)
	next := 0
	return p.topNSkip(i, n, func(j int) bool {
		for next < len(cols) && cols[next] < j {
			next++
		}
		if next < len(cols) && cols[next] == j {
			return lo[next] != 0 || hi[next] != 0
		}
		return false
	})
}

// Holdout is a held-out observation for evaluation.
type Holdout struct {
	Row, Col int
	Value    float64
}

// EvaluateRMSE scores midpoint predictions against held-out values.
func (p *Predictor) EvaluateRMSE(holdouts []Holdout) (float64, error) {
	pred := make([]float64, len(holdouts))
	truth := make([]float64, len(holdouts))
	for k, h := range holdouts {
		v, err := p.Predict(h.Row, h.Col)
		if err != nil {
			return 0, err
		}
		pred[k] = v
		truth[k] = h.Value
	}
	return metrics.RMSE(pred, truth), nil
}

// CoverageRate reports the fraction of held-out values falling inside
// the predicted intervals — a calibration measure for the interval
// semantics (tight intervals with high coverage are best).
func (p *Predictor) CoverageRate(holdouts []Holdout) (float64, error) {
	if len(holdouts) == 0 {
		return 0, nil
	}
	hit := 0
	for _, h := range holdouts {
		iv, err := p.PredictInterval(h.Row, h.Col)
		if err != nil {
			return 0, err
		}
		if iv.Contains(h.Value) {
			hit++
		}
	}
	return float64(hit) / float64(len(holdouts)), nil
}
