// Package recommend implements the reconstruction-based rating
// prediction of Section 6.5 of the paper: an interval-valued rating
// matrix (user-genre or user-item) is decomposed at low rank and the
// reconstruction M̃† supplies estimates for the cells — including the
// unobserved ones, which is what makes low-rank reconstruction a
// recommender. Predictions carry their interval, so callers can surface
// the model's imprecision alongside the point estimate.
package recommend

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/metrics"
)

// Predictor predicts ratings from a low-rank interval reconstruction.
type Predictor struct {
	recon *imatrix.IMatrix
	// Min and Max clamp predictions to the rating scale; Max <= Min
	// disables clamping.
	Min, Max float64
}

// ErrShape is returned when prediction indices fall outside the matrix.
var ErrShape = errors.New("recommend: index out of range")

// Build decomposes the interval rating matrix with the given ISVD method
// and returns a Predictor over its reconstruction. Ratings on the 1..5
// scale should pass minRating=1, maxRating=5.
func Build(ratings *imatrix.IMatrix, method core.Method, opts core.Options, minRating, maxRating float64) (*Predictor, error) {
	d, err := core.Decompose(ratings, method, opts)
	if err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	return &Predictor{recon: d.Reconstruct(), Min: minRating, Max: maxRating}, nil
}

// FromDecomposition wraps an existing decomposition.
func FromDecomposition(d *core.Decomposition, minRating, maxRating float64) *Predictor {
	return &Predictor{recon: d.Reconstruct(), Min: minRating, Max: maxRating}
}

// Rows and Cols report the reconstruction shape.
func (p *Predictor) Rows() int { return p.recon.Rows() }

// Cols reports the reconstruction width.
func (p *Predictor) Cols() int { return p.recon.Cols() }

// PredictInterval returns the interval estimate for cell (i, j), clamped
// to the rating scale.
func (p *Predictor) PredictInterval(i, j int) (interval.Interval, error) {
	if i < 0 || i >= p.recon.Rows() || j < 0 || j >= p.recon.Cols() {
		return interval.Interval{}, fmt.Errorf("%w: (%d, %d) in %dx%d", ErrShape, i, j, p.recon.Rows(), p.recon.Cols())
	}
	iv := p.recon.At(i, j)
	if p.Max > p.Min {
		iv = iv.Clamp(p.Min, p.Max)
	}
	return iv, nil
}

// Predict returns the midpoint estimate for cell (i, j).
func (p *Predictor) Predict(i, j int) (float64, error) {
	iv, err := p.PredictInterval(i, j)
	if err != nil {
		return 0, err
	}
	return iv.Mid(), nil
}

// TopN returns the column indices of the n highest midpoint predictions
// in row i, excluding the given already-rated columns.
func (p *Predictor) TopN(i, n int, exclude map[int]bool) ([]int, error) {
	if i < 0 || i >= p.recon.Rows() {
		return nil, fmt.Errorf("%w: row %d", ErrShape, i)
	}
	type cand struct {
		j int
		v float64
	}
	var cands []cand
	for j := 0; j < p.recon.Cols(); j++ {
		if exclude[j] {
			continue
		}
		iv, _ := p.PredictInterval(i, j)
		cands = append(cands, cand{j, iv.Mid()})
	}
	// Partial selection sort: n is small.
	if n > len(cands) {
		n = len(cands)
	}
	for k := 0; k < n; k++ {
		best := k
		for t := k + 1; t < len(cands); t++ {
			if cands[t].v > cands[best].v {
				best = t
			}
		}
		cands[k], cands[best] = cands[best], cands[k]
	}
	out := make([]int, n)
	for k := 0; k < n; k++ {
		out[k] = cands[k].j
	}
	return out, nil
}

// Holdout is a held-out observation for evaluation.
type Holdout struct {
	Row, Col int
	Value    float64
}

// EvaluateRMSE scores midpoint predictions against held-out values.
func (p *Predictor) EvaluateRMSE(holdouts []Holdout) (float64, error) {
	pred := make([]float64, len(holdouts))
	truth := make([]float64, len(holdouts))
	for k, h := range holdouts {
		v, err := p.Predict(h.Row, h.Col)
		if err != nil {
			return 0, err
		}
		pred[k] = v
		truth[k] = h.Value
	}
	return metrics.RMSE(pred, truth), nil
}

// CoverageRate reports the fraction of held-out values falling inside
// the predicted intervals — a calibration measure for the interval
// semantics (tight intervals with high coverage are best).
func (p *Predictor) CoverageRate(holdouts []Holdout) (float64, error) {
	if len(holdouts) == 0 {
		return 0, nil
	}
	hit := 0
	for _, h := range holdouts {
		iv, err := p.PredictInterval(h.Row, h.Col)
		if err != nil {
			return 0, err
		}
		if iv.Contains(h.Value) {
			hit++
		}
	}
	return float64(hit) / float64(len(holdouts)), nil
}
