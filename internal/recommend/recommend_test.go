package recommend

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/interval"
)

func ratingMatrix(t *testing.T, seed int64) (*imatrix.IMatrix, *dataset.RatingsData) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rc := dataset.RatingsConfig{Users: 40, Items: 60, Genres: 6, NumRatings: 700, LatentRank: 4, Alpha: 0.4}
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		t.Fatal(err)
	}
	return data.UserGenreIntervals(), data
}

func TestBuildAndPredict(t *testing.T) {
	m, _ := ratingMatrix(t, 1)
	p, err := Build(m, core.ISVD4, core.Options{Rank: 3, Target: core.TargetB}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 40 || p.Cols() != 6 {
		t.Fatalf("shape %dx%d", p.Rows(), p.Cols())
	}
	v, err := p.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 || v > 5 {
		t.Fatalf("prediction %g outside rating scale", v)
	}
	iv, err := p.PredictInterval(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo < 1 || iv.Hi > 5 {
		t.Fatalf("interval %v outside scale", iv)
	}
}

func TestPredictBounds(t *testing.T) {
	m, _ := ratingMatrix(t, 2)
	p, err := Build(m, core.ISVD0, core.Options{Rank: 2}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(-1, 0); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := p.Predict(0, 99); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := p.TopN(99, 3, nil); err == nil {
		t.Error("bad TopN row accepted")
	}
}

func TestClampDisabled(t *testing.T) {
	m := imatrix.New(2, 2)
	m.Set(0, 0, interval.New(8, 12)) // outside 1..5
	m.Set(1, 1, interval.Scalar(1))
	d, err := core.Decompose(m, core.ISVD0, core.Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	unclamped := FromDecomposition(d, 0, 0) // Max <= Min disables
	v, err := unclamped.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 5 {
		t.Fatalf("unclamped prediction %g unexpectedly small", v)
	}
	clamped := FromDecomposition(d, 1, 5)
	v, _ = clamped.Predict(0, 0)
	if v > 5 {
		t.Fatalf("clamped prediction %g above max", v)
	}
}

func TestTopNExcludesRated(t *testing.T) {
	m, _ := ratingMatrix(t, 3)
	p, err := Build(m, core.ISVD4, core.Options{Rank: 3, Target: core.TargetB}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[int]bool{0: true, 1: true}
	top, err := p.TopN(5, 3, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("TopN returned %d items", len(top))
	}
	for _, j := range top {
		if exclude[j] {
			t.Fatalf("excluded column %d recommended", j)
		}
	}
	// Descending midpoint order.
	prev, _ := p.Predict(5, top[0])
	for _, j := range top[1:] {
		v, _ := p.Predict(5, j)
		if v > prev+1e-12 {
			t.Fatalf("TopN not descending: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestEvaluateRMSEAndCoverage(t *testing.T) {
	m, data := ratingMatrix(t, 4)
	p, err := Build(m, core.ISVD4, core.Options{Rank: 4, Target: core.TargetB}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Hold out observed user-genre cells (the paper predicts unknown
	// ratings from the low-rank reconstruction).
	var holdouts []Holdout
	for _, r := range data.Ratings[:50] {
		g := data.ItemGenre[r.Item]
		holdouts = append(holdouts, Holdout{Row: r.User, Col: g, Value: r.Value})
	}
	rmse, err := p.EvaluateRMSE(holdouts)
	if err != nil {
		t.Fatal(err)
	}
	if rmse < 0 || rmse > 4 {
		t.Fatalf("implausible RMSE %g", rmse)
	}
	cov, err := p.CoverageRate(holdouts)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage %g out of range", cov)
	}
	// TargetA reconstruction (interval factors) must cover at least as
	// often as the all-scalar TargetC reconstruction (wider intervals).
	pa, err := Build(m, core.ISVD4, core.Options{Rank: 4, Target: core.TargetA}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Build(m, core.ISVD4, core.Options{Rank: 4, Target: core.TargetC}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	covA, _ := pa.CoverageRate(holdouts)
	covC, _ := pc.CoverageRate(holdouts)
	if covA < covC-1e-9 {
		t.Fatalf("interval target coverage %.3f below scalar target %.3f", covA, covC)
	}
}

func TestEmptyHoldouts(t *testing.T) {
	m, _ := ratingMatrix(t, 5)
	p, err := Build(m, core.ISVD0, core.Options{Rank: 2}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cov, err := p.CoverageRate(nil); err != nil || cov != 0 {
		t.Fatalf("empty coverage = %g, %v", cov, err)
	}
	if rmse, err := p.EvaluateRMSE(nil); err != nil || rmse != 0 {
		t.Fatalf("empty RMSE = %g, %v", rmse, err)
	}
}
