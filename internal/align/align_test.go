package align

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assign"
	"repro/internal/matrix"
)

func TestCosine(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Errorf("orthogonal cos = %g", c)
	}
	if c := Cosine([]float64{1, 1}, []float64{2, 2}); math.Abs(c-1) > 1e-12 {
		t.Errorf("parallel cos = %g", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti-parallel cos = %g", c)
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 2}); c != 0 {
		t.Errorf("zero vector cos = %g", c)
	}
}

func TestILSAIdentityWhenAligned(t *testing.T) {
	v := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	res := ILSA(v, v, assign.Hungarian)
	for j, i := range res.Perm {
		if i != j || res.Flip[j] {
			t.Fatalf("identical matrices misaligned: %+v", res)
		}
		if math.Abs(res.Cos[j]-1) > 1e-12 {
			t.Fatalf("cos[%d] = %g", j, res.Cos[j])
		}
	}
}

func TestILSADetectsSwap(t *testing.T) {
	vlo := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	// Vhi has the two basis vectors swapped.
	vhi := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	res := ILSA(vlo, vhi, assign.Hungarian)
	if res.Perm[0] != 1 || res.Perm[1] != 0 {
		t.Fatalf("swap not detected: %v", res.Perm)
	}
}

func TestILSADetectsFlip(t *testing.T) {
	vlo := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	vhi := matrix.FromRows([][]float64{{-1, 0}, {0, 1}})
	res := ILSA(vlo, vhi, assign.Hungarian)
	if !res.Flip[0] || res.Flip[1] {
		t.Fatalf("flip flags wrong: %v", res.Flip)
	}
}

func TestApply(t *testing.T) {
	vlo := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	// Columns swapped AND first (post-swap) direction inverted.
	vhi := matrix.FromRows([][]float64{{0, 1}, {-1, 0}})
	uhi := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	sig := matrix.Diag([]float64{5, 7})
	res := ILSA(vlo, vhi, assign.Hungarian)
	res.Apply(uhi, vhi, sig)
	// After alignment vhi should approximate vlo up to sign conventions.
	for j := 0; j < 2; j++ {
		c := math.Abs(Cosine(vhi.Col(j), vlo.Col(j)))
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("column %d not aligned after Apply: cos = %g", j, c)
		}
		// Signs made positive.
		if Cosine(vhi.Col(j), vlo.Col(j)) < 0 {
			t.Fatalf("column %d still anti-parallel", j)
		}
	}
	// Sigma diagonal permuted consistently (swap expected).
	if sig.At(0, 0) != 7 || sig.At(1, 1) != 5 {
		t.Fatalf("sigma not permuted: %v", sig.Diagonal())
	}
}

func TestApplyToDiag(t *testing.T) {
	res := Result{Perm: []int{2, 0, 1}}
	got := res.ApplyToDiag([]float64{10, 20, 30})
	want := []float64{30, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestColumnCosines(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	b := matrix.FromRows([][]float64{{-1, 1}, {0, 1}})
	cs := ColumnCosines(a, b)
	if math.Abs(cs[0]-1) > 1e-12 {
		t.Errorf("|cos| of anti-parallel = %g, want 1", cs[0])
	}
	want := 1 / math.Sqrt(2)
	if math.Abs(cs[1]-want) > 1e-12 {
		t.Errorf("cs[1] = %g, want %g", cs[1], want)
	}
}

// Property: after Apply, per-column |cos| equals the reported Cos and the
// mean alignment never decreases relative to the unaligned pairing.
func TestPropILSAImprovesAlignment(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n, r := 4+rnd.Intn(6), 2+rnd.Intn(3)
		vlo := matrix.New(n, r)
		vhi := matrix.New(n, r)
		for i := range vlo.Data {
			vlo.Data[i] = rnd.NormFloat64()
			vhi.Data[i] = rnd.NormFloat64()
		}
		before := ColumnCosines(vlo, vhi)
		res := ILSA(vlo, vhi, assign.Hungarian)
		aligned := vhi.Clone()
		res.Apply(nil, aligned, nil)
		after := ColumnCosines(vlo, aligned)
		var sb, sa float64
		for j := range before {
			sb += before[j]
			sa += after[j]
			if math.Abs(after[j]-res.Cos[j]) > 1e-9 {
				return false
			}
			// Aligned columns must be non-negatively correlated.
			if Cosine(vlo.Col(j), aligned.Col(j)) < -1e-9 {
				return false
			}
		}
		return sa >= sb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
