// Package align implements Interval-Valued Latent Semantic Alignment
// (ILSA, Section 3.3 and Supplementary Algorithm 6 of the paper).
//
// Given the minimum-side and maximum-side factor matrices V* and V^*
// produced by decomposing the endpoints of an interval-valued matrix
// independently, ILSA pairs each column of V^* with the column of V* it
// best aligns with (preference = |cos|), and flips the direction of
// paired columns whose cosine is negative, so that the combined
// interval-valued latent space has v* ≈ v^* per basis vector.
package align

import (
	"math"

	"repro/internal/assign"
	"repro/internal/matrix"
)

// Result describes an alignment between the columns of a minimum-side
// matrix Vlo and a maximum-side matrix Vhi.
type Result struct {
	// Perm maps each Vlo column index j to the Vhi column Perm[j] it is
	// paired with (apply as: alignedHi[:, j] = Vhi[:, Perm[j]]).
	Perm []int
	// Flip[j] reports that the paired Vhi column points in the opposite
	// direction (cosine < 0) and must be negated after permutation.
	Flip []bool
	// Cos[j] is |cos| between Vlo[:, j] and its aligned partner.
	Cos []float64
}

// ILSA aligns the columns of vhi to the columns of vlo using the given
// assignment method (the paper's Problem 2 uses Hungarian; Supplementary
// Algorithm 6 uses Greedy; Problem 1 uses StableMarriage). Both matrices
// must share the same shape.
func ILSA(vlo, vhi *matrix.Dense, method assign.Method) Result {
	if vlo.Rows != vhi.Rows || vlo.Cols != vhi.Cols {
		panic("align: ILSA: shape mismatch")
	}
	r := vlo.Cols
	// score[i][j] = |cos(vhi[:,i], vlo[:,j])|: rows index Vhi columns,
	// columns index Vlo columns, so perm[j] (row for column j) is directly
	// the Vhi column paired with Vlo column j.
	score := make([][]float64, r)
	for i := 0; i < r; i++ {
		score[i] = make([]float64, r)
		hi := vhi.Col(i)
		for j := 0; j < r; j++ {
			score[i][j] = math.Abs(Cosine(hi, vlo.Col(j)))
		}
	}
	perm := assign.Solve(score, method)
	flip := make([]bool, r)
	cos := make([]float64, r)
	for j := 0; j < r; j++ {
		c := Cosine(vlo.Col(j), vhi.Col(perm[j]))
		flip[j] = c < 0
		cos[j] = math.Abs(c)
	}
	return Result{Perm: perm, Flip: flip, Cos: cos}
}

// Apply permutes and sign-flips the columns of the given maximum-side
// matrices in place according to the alignment. Any of the arguments may
// be nil. sigmaHi, when non-nil, is a diagonal matrix whose diagonal is
// permuted (signs are never flipped on singular values).
func (res Result) Apply(uHi, vHi, sigmaHi *matrix.Dense) {
	r := len(res.Perm)
	permCols := func(m *matrix.Dense) {
		if m == nil {
			return
		}
		orig := m.Clone()
		for j := 0; j < r; j++ {
			src := res.Perm[j]
			for i := 0; i < m.Rows; i++ {
				v := orig.At(i, src)
				if res.Flip[j] {
					v = -v
				}
				m.Set(i, j, v)
			}
		}
	}
	permCols(uHi)
	permCols(vHi)
	if sigmaHi != nil {
		orig := sigmaHi.Diagonal()
		for j := 0; j < r; j++ {
			sigmaHi.Set(j, j, orig[res.Perm[j]])
		}
	}
}

// ApplyToDiag permutes a plain diagonal slice according to the alignment.
func (res Result) ApplyToDiag(d []float64) []float64 {
	out := make([]float64, len(d))
	for j := range res.Perm {
		out[j] = d[res.Perm[j]]
	}
	return out
}

// Cosine returns the cosine similarity of two equal-length vectors;
// it returns 0 when either vector has zero norm.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// ColumnCosines returns |cos| between corresponding columns of a and b
// without alignment — the "before" series of the paper's Figures 3 and 5.
func ColumnCosines(a, b *matrix.Dense) []float64 {
	if a.Cols != b.Cols {
		panic("align: ColumnCosines: column mismatch")
	}
	out := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		out[j] = math.Abs(Cosine(a.Col(j), b.Col(j)))
	}
	return out
}
