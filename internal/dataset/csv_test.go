package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/matrix"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultSynthetic()
	cfg.Rows, cfg.Cols = 7, 5
	cfg.IntervalDensity = 0.5
	m := MustGenerateUniform(cfg, rng)
	var b strings.Builder
	if err := WriteIntervalCSV(&b, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIntervalCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m.Lo, back.Lo, 0) || !matrix.Equal(m.Hi, back.Hi, 0) {
		t.Fatal("round trip lost data")
	}
}

func TestCSVParseForms(t *testing.T) {
	m, err := ReadIntervalCSV(strings.NewReader("1.5,2..3\n-1,0..0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.At(0, 0).Equal(interval.Scalar(1.5)) {
		t.Fatalf("scalar cell = %v", m.At(0, 0))
	}
	if !m.At(0, 1).Equal(interval.New(2, 3)) {
		t.Fatalf("interval cell = %v", m.At(0, 1))
	}
	if !m.At(1, 0).Equal(interval.Scalar(-1)) {
		t.Fatalf("negative scalar = %v", m.At(1, 0))
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",         // empty
		"1,abc\n",  // bad scalar
		"1,2..x\n", // bad endpoint
		"3..1\n",   // misordered
		"1,2\n3\n", // ragged (csv reader errors)
		"x..2\n",   // bad lower
	}
	for _, c := range cases {
		if _, err := ReadIntervalCSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
