package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imatrix"
	"repro/internal/interval"
)

// GeneralizationLevel identifies one of the paper's four recoding levels:
// L1 divides the value domain into 100 generalization intervals, L2 into
// 50, L3 into 20, and L4 into 5 (higher level = coarser = more
// anonymized).
type GeneralizationLevel int

const (
	L1 GeneralizationLevel = iota // 100 buckets
	L2                            // 50 buckets
	L3                            // 20 buckets
	L4                            // 5 buckets
)

// Buckets returns the number of generalization intervals of the level.
func (l GeneralizationLevel) Buckets() int {
	switch l {
	case L1:
		return 100
	case L2:
		return 50
	case L3:
		return 20
	case L4:
		return 5
	default:
		panic(fmt.Sprintf("dataset: unknown generalization level %d", int(l)))
	}
}

// AnonymizationMix gives the probability with which each cell is
// generalized at levels L1..L4. The weights must sum to 1.
type AnonymizationMix [4]float64

// The paper's three anonymization scenarios (Section 6.1.1).
var (
	// HighAnonymity skews towards coarse levels: L1 10%, L2 20%, L3 30%, L4 40%.
	HighAnonymity = AnonymizationMix{0.10, 0.20, 0.30, 0.40}
	// MediumAnonymity uses all levels equally.
	MediumAnonymity = AnonymizationMix{0.25, 0.25, 0.25, 0.25}
	// LowAnonymity skews towards fine levels: L1 40%, L2 30%, L3 20%, L4 10%.
	LowAnonymity = AnonymizationMix{0.40, 0.30, 0.20, 0.10}
)

// Validate checks that the mixture is a probability distribution.
func (m AnonymizationMix) Validate() error {
	var s float64
	for _, w := range m {
		if w < 0 {
			return fmt.Errorf("dataset: negative mixture weight %g", w)
		}
		s += w
	}
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("dataset: mixture weights sum to %g, want 1", s)
	}
	return nil
}

// sampleLevel draws a generalization level from the mixture.
func (m AnonymizationMix) sampleLevel(rng *rand.Rand) GeneralizationLevel {
	u := rng.Float64()
	acc := 0.0
	for i, w := range m {
		acc += w
		if u < acc {
			return GeneralizationLevel(i)
		}
	}
	return L4
}

// Generalize replaces the scalar v ∈ [0, 1) with the generalization
// interval (bucket) containing it at the given level — the value-recoding
// primitive of k-anonymity publishing (Sweeney).
func Generalize(v float64, level GeneralizationLevel) interval.Interval {
	k := float64(level.Buckets())
	b := math.Floor(v * k)
	if b >= k { // v == 1 boundary
		b = k - 1
	}
	return interval.New(b/k, (b+1)/k)
}

// GenerateAnonymized draws a rows×cols random matrix with values uniform
// in [0, 1) and generalizes every cell at a level sampled from the mix,
// producing the anonymized interval matrices of Section 6.1.1.
func GenerateAnonymized(rows, cols int, mix AnonymizationMix, rng *rand.Rand) (*imatrix.IMatrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("dataset: non-positive shape %dx%d", rows, cols)
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	m := imatrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := rng.Float64()
			m.Set(i, j, Generalize(v, mix.sampleLevel(rng)))
		}
	}
	return m, nil
}
