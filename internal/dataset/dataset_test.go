package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestGenerateUniformDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultSynthetic()
	m, err := GenerateUniform(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 40 || m.Cols() != 250 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if !m.IsWellFormed() {
		t.Fatal("misordered intervals")
	}
	st := Stats(m)
	if st.MatrixDensity < 0.99 {
		t.Errorf("default should be fully dense, got %g", st.MatrixDensity)
	}
	if st.IntervalDensity < 0.95 {
		t.Errorf("default interval density should be ≈1, got %g", st.IntervalDensity)
	}
}

func TestGenerateUniformZeroFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultSynthetic()
	cfg.ZeroFrac = 0.9
	m, err := GenerateUniform(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(m)
	if math.Abs(st.MatrixDensity-0.1) > 0.03 {
		t.Errorf("density = %g, want ≈0.1", st.MatrixDensity)
	}
}

func TestGenerateUniformIntensityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultSynthetic()
	cfg.Intensity = 0.25
	m, err := GenerateUniform(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Lo.Data {
		lo, hi := m.Lo.Data[i], m.Hi.Data[i]
		if lo == 0 {
			continue
		}
		if hi-lo > 0.25*lo+1e-12 {
			t.Fatalf("span %g exceeds intensity bound %g", hi-lo, 0.25*lo)
		}
	}
}

func TestGenerateUniformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := DefaultSynthetic()
	bad.IntervalDensity = 1.5
	if _, err := GenerateUniform(bad, rng); err == nil {
		t.Fatal("expected validation error")
	}
	bad = DefaultSynthetic()
	bad.Rows = 0
	if _, err := GenerateUniform(bad, rng); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestGeneralize(t *testing.T) {
	// L4 has 5 buckets of width 0.2; 0.37 lands in [0.2, 0.4).
	iv := Generalize(0.37, L4)
	if math.Abs(iv.Lo-0.2) > 1e-12 || math.Abs(iv.Hi-0.4) > 1e-12 {
		t.Fatalf("Generalize = %v", iv)
	}
	// Boundary value 1.0 stays in the last bucket.
	iv = Generalize(1.0, L4)
	if math.Abs(iv.Hi-1.0) > 1e-12 {
		t.Fatalf("boundary bucket = %v", iv)
	}
	// Finer levels give narrower buckets.
	if Generalize(0.5, L1).Span() >= Generalize(0.5, L4).Span() {
		t.Fatal("L1 should be finer than L4")
	}
}

func TestLevelBuckets(t *testing.T) {
	want := map[GeneralizationLevel]int{L1: 100, L2: 50, L3: 20, L4: 5}
	for l, n := range want {
		if l.Buckets() != n {
			t.Errorf("%d buckets = %d", l, l.Buckets())
		}
	}
}

func TestGenerateAnonymized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mix := range []AnonymizationMix{HighAnonymity, MediumAnonymity, LowAnonymity} {
		m, err := GenerateAnonymized(30, 20, mix, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsWellFormed() {
			t.Fatal("misordered")
		}
		// Every cell is an interval with span matching one of the levels.
		validSpans := map[float64]bool{0.01: true, 0.02: true, 0.05: true, 0.2: true}
		for i := range m.Lo.Data {
			span := m.Hi.Data[i] - m.Lo.Data[i]
			found := false
			for s := range validSpans {
				if math.Abs(span-s) < 1e-9 {
					found = true
				}
			}
			if !found {
				t.Fatalf("unexpected span %g", span)
			}
		}
	}
	// Higher anonymity ⇒ larger average span.
	mh, _ := GenerateAnonymized(50, 50, HighAnonymity, rng)
	ml, _ := GenerateAnonymized(50, 50, LowAnonymity, rng)
	if mh.TotalSpan() <= ml.TotalSpan() {
		t.Errorf("high anonymity span %g not larger than low %g", mh.TotalSpan(), ml.TotalSpan())
	}
}

func TestAnonymizationMixValidate(t *testing.T) {
	if err := (AnonymizationMix{0.5, 0.5, 0.1, 0}).Validate(); err == nil {
		t.Fatal("non-normalized mix accepted")
	}
	if err := (AnonymizationMix{-0.5, 1.5, 0, 0}).Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := MediumAnonymity.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := FaceConfig{Subjects: 5, ImagesPerSubject: 4, Res: 16, Radius: 1, Alpha: 1}
	fd, err := GenerateFaces(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Scalar.Rows != 20 || fd.Scalar.Cols != 256 {
		t.Fatalf("shape %dx%d", fd.Scalar.Rows, fd.Scalar.Cols)
	}
	if len(fd.Labels) != 20 || fd.Labels[0] != 0 || fd.Labels[19] != 4 {
		t.Fatalf("labels wrong: %v", fd.Labels)
	}
	// Pixels in range.
	for _, v := range fd.Scalar.Data {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %g outside [0,255]", v)
		}
	}
	// Intervals well-formed and centered on the scalar pixels.
	if !fd.Interval.IsWellFormed() {
		t.Fatal("intervals misordered")
	}
	for i := range fd.Scalar.Data {
		lo, hi := fd.Interval.Lo.Data[i], fd.Interval.Hi.Data[i]
		if lo < 0 {
			t.Fatal("negative interval endpoint")
		}
		mid := (lo + hi) / 2
		// Intervals are centered on the pixel except where the lower
		// endpoint was clamped at 0.
		if lo > 0 && math.Abs(mid-fd.Scalar.Data[i]) > 1e-9 {
			t.Fatal("interval not centered on pixel")
		}
		if hi < fd.Scalar.Data[i] {
			t.Fatal("upper endpoint below pixel")
		}
	}
	// Same-subject images must be more similar than cross-subject ones
	// (class structure the classification experiments rely on).
	same := rowDist(fd.Scalar, 0, 1)
	diff := rowDist(fd.Scalar, 0, 4)
	if same >= diff {
		t.Errorf("same-subject distance %g ≥ cross-subject %g", same, diff)
	}
}

func rowDist(m *matrix.Dense, i, j int) float64 {
	var s float64
	ri, rj := m.RowView(i), m.RowView(j)
	for k := range ri {
		d := ri[k] - rj[k]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestFaceIntervalsFlatImage(t *testing.T) {
	// A constant image has zero neighborhood std everywhere → scalar intervals.
	pix := matrix.New(1, 16)
	for i := range pix.Data {
		pix.Data[i] = 100
	}
	iv := FaceIntervals(pix, 4, 1, 1)
	if iv.MaxSpan() != 0 {
		t.Fatalf("flat image produced span %g", iv.MaxSpan())
	}
}

func TestFaceIntervalsAlphaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pix := matrix.New(2, 64)
	// Keep values near mid-gray with small variance so no endpoint is
	// clamped at 0 and spans scale exactly with alpha.
	for i := range pix.Data {
		pix.Data[i] = 120 + rng.Float64()*16
	}
	iv1 := FaceIntervals(pix, 8, 1, 1)
	iv2 := FaceIntervals(pix, 8, 1, 2)
	if math.Abs(iv2.TotalSpan()-2*iv1.TotalSpan()) > 1e-6 {
		t.Fatalf("spans do not scale with alpha: %g vs %g", iv1.TotalSpan(), iv2.TotalSpan())
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	labels := make([]int, 40)
	for i := range labels {
		labels[i] = i / 10 // 4 classes × 10
	}
	train, test := TrainTestSplit(labels, 0.5, rng)
	if len(train) != 20 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	// Stratified: 5 per class in each side.
	cnt := map[int]int{}
	for _, i := range train {
		cnt[labels[i]]++
	}
	for c := 0; c < 4; c++ {
		if cnt[c] != 5 {
			t.Fatalf("class %d train count %d", c, cnt[c])
		}
	}
	// No overlap.
	seen := map[int]bool{}
	for _, i := range train {
		seen[i] = true
	}
	for _, i := range test {
		if seen[i] {
			t.Fatal("train/test overlap")
		}
	}
}

func TestGenerateRatings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := MovieLensLike().Scaled(0.05)
	data, err := GenerateRatings(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Ratings) != cfg.NumRatings {
		t.Fatalf("got %d ratings", len(data.Ratings))
	}
	seen := map[[2]int]bool{}
	for _, r := range data.Ratings {
		if r.Value < 1 || r.Value > 5 || r.Value != math.Round(r.Value) {
			t.Fatalf("bad rating %v", r)
		}
		key := [2]int{r.User, r.Item}
		if seen[key] {
			t.Fatal("duplicate rating cell")
		}
		seen[key] = true
	}
}

func TestUserGenreIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := RatingsConfig{Users: 30, Items: 60, Genres: 5, NumRatings: 400, LatentRank: 4, Alpha: 0.5}
	data, err := GenerateRatings(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := data.UserGenreIntervals()
	if m.Rows() != 30 || m.Cols() != 5 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if !m.IsWellFormed() {
		t.Fatal("misordered")
	}
	// Check one cell against a direct recomputation.
	u, g := data.Ratings[0].User, data.ItemGenre[data.Ratings[0].Item]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range data.Ratings {
		if r.User == u && data.ItemGenre[r.Item] == g {
			lo = math.Min(lo, r.Value)
			hi = math.Max(hi, r.Value)
		}
	}
	got := m.At(u, g)
	if got.Lo != lo || got.Hi != hi {
		t.Fatalf("cell (%d,%d) = %v, want [%g,%g]", u, g, got, lo, hi)
	}
}

func TestCFIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := RatingsConfig{Users: 20, Items: 30, Genres: 4, NumRatings: 150, LatentRank: 4, Alpha: 0.5}
	data, err := GenerateRatings(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := data.CFIntervals()
	if !m.IsWellFormed() {
		t.Fatal("misordered")
	}
	// Observed cells are centered on the rating; unobserved cells are zero.
	obs := map[[2]int]float64{}
	for _, r := range data.Ratings {
		obs[[2]int{r.User, r.Item}] = r.Value
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			iv := m.At(i, j)
			if v, ok := obs[[2]int{i, j}]; ok {
				if math.Abs(iv.Mid()-v) > 1e-9 {
					t.Fatalf("cell (%d,%d) mid %g != rating %g", i, j, iv.Mid(), v)
				}
			} else if iv.Lo != 0 || iv.Hi != 0 {
				t.Fatalf("unobserved cell (%d,%d) = %v", i, j, iv)
			}
		}
	}
	// Alpha = 0 gives scalar intervals.
	cfg.Alpha = 0
	data2, _ := GenerateRatings(cfg, rand.New(rand.NewSource(11)))
	if data2.CFIntervals().MaxSpan() != 0 {
		t.Fatal("alpha=0 should give scalars")
	}
}

func TestSplitRatings(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := RatingsConfig{Users: 20, Items: 30, Genres: 4, NumRatings: 100, LatentRank: 4, Alpha: 0.5}
	data, _ := GenerateRatings(cfg, rng)
	train, test := data.SplitRatings(0.8, rng)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
}

func TestRatingsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bad := RatingsConfig{Users: 2, Items: 2, Genres: 1, NumRatings: 100, LatentRank: 2}
	if _, err := GenerateRatings(bad, rng); err == nil {
		t.Fatal("oversubscribed NumRatings accepted")
	}
}

func TestScaled(t *testing.T) {
	c := MovieLensLike().Scaled(0.1)
	if c.Users != 94 || c.Genres != 19 {
		t.Fatalf("scaled config %+v", c)
	}
	tiny := MovieLensLike().Scaled(0.000001)
	if tiny.Users < 8 || tiny.NumRatings > tiny.Users*tiny.Items/2 || tiny.NumRatings < 1 {
		t.Fatalf("scaling floor/cap not applied: %+v", tiny)
	}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: generalization intervals always contain the original value.
func TestPropGeneralizeContains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := rng.Float64()
		for _, l := range []GeneralizationLevel{L1, L2, L3, L4} {
			iv := Generalize(v, l)
			if !iv.Contains(v) {
				return false
			}
			want := 1 / float64(l.Buckets())
			if math.Abs(iv.Span()-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
