package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imatrix"
	"repro/internal/matrix"
)

// FaceConfig describes the ORL-like synthetic face workload of
// Section 6.1.2. The real ORL dataset (40 subjects × 10 images of
// 32×32 = 1024 pixels) is not redistributable; GenerateFaces draws
// images from a per-subject low-rank generative model instead, which
// preserves the properties the experiments rely on: class-correlated
// low-rank row structure and local pixel correlation.
type FaceConfig struct {
	Subjects         int // paper: 40
	ImagesPerSubject int // paper: 10
	Res              int // paper: 32 (Table 3 also uses 64)
	// Radius is the neighborhood range r of Supplementary F.1.
	Radius int
	// Alpha is the multiplicative scale coefficient α of Supplementary
	// F.1 (δ = α·std of the pixel neighborhood).
	Alpha float64
}

// DefaultFaces returns the paper's ORL configuration: 40 subjects,
// 10 images each, 32×32 pixels, neighborhood radius 1, α = 1.
func DefaultFaces() FaceConfig {
	return FaceConfig{Subjects: 40, ImagesPerSubject: 10, Res: 32, Radius: 1, Alpha: 1}
}

// Validate reports configuration errors.
func (c FaceConfig) Validate() error {
	if c.Subjects <= 0 || c.ImagesPerSubject <= 0 || c.Res <= 1 {
		return fmt.Errorf("dataset: bad face config %+v", c)
	}
	if c.Radius < 0 || c.Alpha < 0 {
		return fmt.Errorf("dataset: negative radius or alpha in %+v", c)
	}
	return nil
}

// FaceData holds a generated face dataset: the scalar pixel matrix
// (one row per image, one column per pixel), the interval-valued version
// constructed per Supplementary F.1, and the subject label of every row.
type FaceData struct {
	Scalar   *matrix.Dense
	Interval *imatrix.IMatrix
	Labels   []int
	Res      int
}

// blob is one Gaussian intensity bump of a synthetic face template.
type blob struct {
	cx, cy, sx, sy, amp float64
}

// GenerateFaces draws the synthetic face dataset. Every subject gets a
// template of Gaussian blobs (eyes/nose/mouth-like features at
// subject-specific positions and intensities); every image perturbs the
// blob positions slightly and adds pixel noise, mimicking the pose and
// expression variation of real face datasets. Pixel values are in
// [0, 255].
func GenerateFaces(cfg FaceConfig, rng *rand.Rand) (*FaceData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Subjects * cfg.ImagesPerSubject
	d := cfg.Res * cfg.Res
	scalar := matrix.New(n, d)
	labels := make([]int, n)

	res := float64(cfg.Res)
	// Canonical face layout shared by all subjects (eyes, nose, mouth,
	// cheeks, brow): subjects differ only by modest offsets and intensity
	// changes, making classes genuinely confusable, as in real face data.
	canonical := []blob{
		{cx: 0.32, cy: 0.36, sx: 0.09, sy: 0.07, amp: 110}, // left eye
		{cx: 0.68, cy: 0.36, sx: 0.09, sy: 0.07, amp: 110}, // right eye
		{cx: 0.50, cy: 0.55, sx: 0.07, sy: 0.12, amp: 95},  // nose
		{cx: 0.50, cy: 0.76, sx: 0.14, sy: 0.06, amp: 100}, // mouth
		{cx: 0.50, cy: 0.18, sx: 0.22, sy: 0.07, amp: 70},  // brow/hairline
		{cx: 0.50, cy: 0.50, sx: 0.30, sy: 0.36, amp: 60},  // face oval
	}
	row := 0
	for s := 0; s < cfg.Subjects; s++ {
		blobs := make([]blob, len(canonical))
		for b, c := range canonical {
			blobs[b] = blob{
				cx:  res * (c.cx + 0.035*rng.NormFloat64()),
				cy:  res * (c.cy + 0.035*rng.NormFloat64()),
				sx:  res * c.sx * (1 + 0.25*rng.NormFloat64()),
				sy:  res * c.sy * (1 + 0.25*rng.NormFloat64()),
				amp: c.amp * (1 + 0.25*rng.NormFloat64()),
			}
			blobs[b].sx = math.Max(blobs[b].sx, res*0.03)
			blobs[b].sy = math.Max(blobs[b].sy, res*0.03)
		}
		base := 35 + 20*rng.Float64() // subject-specific background level
		for img := 0; img < cfg.ImagesPerSubject; img++ {
			labels[row] = s
			// Per-image variation: pose shift, per-blob wobble,
			// illumination change, and sensor noise.
			dx := rng.NormFloat64() * res * 0.03
			dy := rng.NormFloat64() * res * 0.03
			illum := 1 + 0.15*rng.NormFloat64()
			wobble := make([]blob, len(blobs))
			for b, bl := range blobs {
				wobble[b] = bl
				wobble[b].cx += rng.NormFloat64() * res * 0.02
				wobble[b].cy += rng.NormFloat64() * res * 0.02
				wobble[b].amp *= 1 + 0.10*rng.NormFloat64()
			}
			pix := scalar.RowView(row)
			for y := 0; y < cfg.Res; y++ {
				for x := 0; x < cfg.Res; x++ {
					v := base
					for _, b := range wobble {
						ex := (float64(x) - b.cx - dx) / b.sx
						ey := (float64(y) - b.cy - dy) / b.sy
						v += b.amp * math.Exp(-(ex*ex+ey*ey)/2)
					}
					v = v*illum + rng.NormFloat64()*12 // illumination + noise
					if v < 0 {
						v = 0
					} else if v > 255 {
						v = 255
					}
					pix[y*cfg.Res+x] = v
				}
			}
			row++
		}
	}
	iv := FaceIntervals(scalar, cfg.Res, cfg.Radius, cfg.Alpha)
	return &FaceData{Scalar: scalar, Interval: iv, Labels: labels, Res: cfg.Res}, nil
}

// FaceIntervals applies the interval construction of Supplementary F.1 to
// a pixel matrix: for each pixel X_ij, the neighborhood set S_ij^(r)
// collects the pixels of the same image within Chebyshev radius r, and
// the interval is I(X_ij) = [X_ij − δ, X_ij + δ] with δ = α·std(S_ij).
func FaceIntervals(pixels *matrix.Dense, res, radius int, alpha float64) *imatrix.IMatrix {
	n := pixels.Rows
	out := imatrix.New(n, pixels.Cols)
	for i := 0; i < n; i++ {
		img := pixels.RowView(i)
		lo := out.Lo.RowView(i)
		hi := out.Hi.RowView(i)
		for y := 0; y < res; y++ {
			for x := 0; x < res; x++ {
				j := y*res + x
				delta := alpha * neighborhoodStd(img, res, x, y, radius)
				// Clamp at 0: pixel intensities are non-negative, and the
				// I-NMF baseline requires non-negative endpoints.
				lo[j] = math.Max(img[j]-delta, 0)
				hi[j] = img[j] + delta
			}
		}
	}
	return out
}

// neighborhoodStd returns the population standard deviation of the
// pixels within Chebyshev radius r of (x, y).
func neighborhoodStd(img []float64, res, x, y, r int) float64 {
	var sum, sumSq float64
	count := 0
	for yy := max(0, y-r); yy <= min(res-1, y+r); yy++ {
		for xx := max(0, x-r); xx <= min(res-1, x+r); xx++ {
			v := img[yy*res+xx]
			sum += v
			sumSq += v * v
			count++
		}
	}
	if count == 0 {
		return 0
	}
	mean := sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// TrainTestSplit splits row indices into train and test sets, sampling
// trainFrac of the rows of each class (stratified, per the paper's
// "randomly select 50% rows per individual as training data").
func TrainTestSplit(labels []int, trainFrac float64, rng *rand.Rand) (train, test []int) {
	byClass := map[int][]int{}
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		k := int(math.Round(trainFrac * float64(len(idx))))
		if k < 1 {
			k = 1
		}
		if k > len(idx) {
			k = len(idx)
		}
		train = append(train, idx[:k]...)
		test = append(test, idx[k:]...)
	}
	return train, test
}
