package dataset

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// StreamSplit partitions the stored cells of m into a base cell set and
// `batches` arriving cell batches carrying ~frac of the cells in total
// (at least one cell per batch): the reproducible stream split shared by
// cmd/datagen's -batches files and the experiments streaming scenario.
// The split is a pure function of (m, frac, batches, rng state): a
// deterministic shuffle with the stream taken from the tail, so the base
// keeps a uniform sample, then a contiguous even split into batches.
func StreamSplit(m *sparse.ICSR, frac float64, batches int, rng *rand.Rand) (base []sparse.ITriplet, deltas [][]sparse.ITriplet, err error) {
	if batches <= 0 {
		return nil, nil, fmt.Errorf("dataset: StreamSplit: %d batches", batches)
	}
	cells := make([]sparse.ITriplet, 0, m.NNZ())
	m.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		for p, j := range cols {
			cells = append(cells, sparse.ITriplet{Row: i, Col: j, Lo: lo[p], Hi: hi[p]})
		}
	})
	streamN := int(float64(len(cells)) * frac)
	if streamN < batches {
		streamN = batches
	}
	if streamN >= len(cells) {
		return nil, nil, fmt.Errorf("dataset: StreamSplit: matrix has %d observed cells, too few for %d batches", len(cells), batches)
	}
	rng.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })
	base, stream := cells[:len(cells)-streamN], cells[len(cells)-streamN:]
	deltas = make([][]sparse.ITriplet, batches)
	for k := 0; k < batches; k++ {
		deltas[k] = stream[k*len(stream)/batches : (k+1)*len(stream)/batches]
	}
	return base, deltas, nil
}

// Delta COO format: the same CSV layout as the interval COO format —
// header "rows,cols", then "row,col,value" records — but interpreted as
// a cell-patch batch against a base matrix of known shape: the header
// must match the base dimensions exactly (a hostile or stale delta file
// cannot silently resize the matrix), every record patches one cell
// inside the base shape, and duplicate cells within one batch are
// errors (a batch must be an unambiguous set of cell assignments).
// cmd/datagen's -batches flag emits these files; core.Delta.Patch
// consumes the triplets.

// WriteDeltaCOO writes a patch batch in the delta COO format for a base
// matrix of the given shape; sparse.FromICOO sorts the triplets by
// (row, col) — so the output is uniquely determined by the batch's cell
// set — and rejects out-of-range and duplicate cells, and misordered or
// non-finite intervals are rejected here: everything ReadDeltaCOO would
// refuse fails at write time, not when the persisted file is consumed.
func WriteDeltaCOO(w io.Writer, rows, cols int, ts []sparse.ITriplet) error {
	for _, t := range ts {
		if math.IsNaN(t.Lo) || math.IsInf(t.Lo, 0) || math.IsNaN(t.Hi) || math.IsInf(t.Hi, 0) {
			return fmt.Errorf("dataset: WriteDeltaCOO: cell (%d, %d) has a non-finite endpoint", t.Row, t.Col)
		}
		if t.Lo > t.Hi {
			return fmt.Errorf("dataset: WriteDeltaCOO: cell (%d, %d) is misordered (lo > hi)", t.Row, t.Col)
		}
	}
	m, err := sparse.FromICOO(rows, cols, ts)
	if err != nil {
		return fmt.Errorf("dataset: WriteDeltaCOO: %w", err)
	}
	return WriteIntervalCOO(w, m)
}

// ReadDeltaCOO (window.go) parses delta COO files, including the
// tombstone records of the sliding-window extension; WriteDeltaCOO
// remains the patch-only writer for purely additive streams.
