package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// RatingsConfig describes a synthetic ratings workload standing in for
// the MovieLens/Ciao/Epinions datasets of Section 6.1.3. Ratings are
// drawn from a latent-factor model (per-user and per-item factor vectors)
// so the resulting matrices carry genuine low-rank structure, then
// discretized to the 1..5 star scale.
type RatingsConfig struct {
	Users, Items, Genres int
	// NumRatings is the number of observed (user, item) ratings.
	NumRatings int
	// LatentRank is the rank of the generative factor model.
	LatentRank int
	// Alpha is the interval scale coefficient α of Supplementary F.2.
	Alpha float64
	// RatingNoise is the σ of the Gaussian noise added before rounding
	// to the 1..5 scale (default 0.4). Higher values disperse repeat
	// ratings within a user-category cell, raising interval density.
	RatingNoise float64
	// UserSkew and ItemSkew concentrate ratings on popular users/items
	// (0 = uniform; k > 0 draws index n·u^(1+k), a power-law head).
	// Real rating corpora are heavily skewed, which is what produces the
	// high interval densities of the published user-category matrices.
	UserSkew, ItemSkew float64
}

// MovieLensLike returns the published MovieLens-100K shape: 943 users,
// 1682 movies, 19 genres, 100K ratings (full user-genre rank 19).
func MovieLensLike() RatingsConfig {
	return RatingsConfig{Users: 943, Items: 1682, Genres: 19, NumRatings: 100_000, LatentRank: 12, Alpha: 0.5}
}

// CiaoLike returns the published Ciao shape: 7K users and 28 categories
// (the paper reports matrix density 0.28 and interval density 0.44 for
// the user-category matrix; the skewed generator approximates both).
func CiaoLike() RatingsConfig {
	return RatingsConfig{Users: 7000, Items: 4000, Genres: 28, NumRatings: 240_000,
		LatentRank: 10, Alpha: 0.5, RatingNoise: 0.9, UserSkew: 3.5, ItemSkew: 1.5}
}

// EpinionsLike returns the published Epinions shape: 22K users and 27
// categories (matrix density 0.26, interval density 0.49).
func EpinionsLike() RatingsConfig {
	return RatingsConfig{Users: 22_000, Items: 8000, Genres: 27, NumRatings: 760_000,
		LatentRank: 10, Alpha: 0.5, RatingNoise: 0.9, UserSkew: 3.5, ItemSkew: 1.5}
}

// Scaled returns a copy of the config with users and items scaled by f
// and the rating count by f² (so the observed density is preserved);
// genres, rank, and alpha are unchanged. Used to keep unit tests and
// quick benchmark runs fast while preserving the workload shape.
func (c RatingsConfig) Scaled(f float64) RatingsConfig {
	s := c
	s.Users = max(8, int(float64(c.Users)*f))
	s.Items = max(8, int(float64(c.Items)*f))
	s.NumRatings = max(64, int(float64(c.NumRatings)*f*f))
	if limit := s.Users * s.Items / 2; s.NumRatings > limit {
		s.NumRatings = limit
	}
	return s
}

// WithDensity returns a copy of the config whose observed-cell count is
// d·Users·Items (clamped to [1, Users·Items/2]) — the density knob the
// sparse experiments turn: at 1-5% density a ratings matrix is
// realistically sparse and the CSR paths carry the workload. The upper
// clamp is the generator's termination bound: beyond half density the
// rejection sampler degrades, so densities above 0.5 run at 0.5 —
// callers that must not silently lose density should validate first
// (cmd/datagen and cmd/experiments reject d > 0.5).
func (c RatingsConfig) WithDensity(d float64) RatingsConfig {
	s := c
	n := int(d * float64(c.Users) * float64(c.Items))
	if n < 1 {
		n = 1
	}
	if limit := c.Users * c.Items / 2; n > limit {
		n = limit
	}
	s.NumRatings = n
	return s
}

// Validate reports configuration errors.
func (c RatingsConfig) Validate() error {
	if c.Users <= 0 || c.Items <= 0 || c.Genres <= 0 || c.NumRatings <= 0 || c.LatentRank <= 0 {
		return fmt.Errorf("dataset: bad ratings config %+v", c)
	}
	if c.NumRatings > c.Users*c.Items {
		return fmt.Errorf("dataset: NumRatings %d exceeds matrix size %d", c.NumRatings, c.Users*c.Items)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("dataset: negative Alpha %g", c.Alpha)
	}
	return nil
}

// Rating is one observed user-item rating on the 1..5 scale.
type Rating struct {
	User, Item int
	Value      float64
}

// RatingsData is a generated ratings dataset.
type RatingsData struct {
	Config     RatingsConfig
	Ratings    []Rating
	ItemGenre  []int // genre of each item
	userTotals []cellStats
	itemTotals []cellStats
}

type cellStats struct {
	n          int
	sum, sumSq float64
}

func (s *cellStats) add(v float64) { s.n++; s.sum += v; s.sumSq += v * v }

// GenerateRatings draws a ratings dataset from the latent-factor model:
// rating(u, i) = clamp(round(3 + p_u·q_i + ε), 1, 5) with p, q ~ N(0, 1/√k)
// factors, observed at NumRatings uniformly sampled distinct cells.
func GenerateRatings(cfg RatingsConfig, rng *rand.Rand) (*RatingsData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.LatentRank
	scale := 1.4 / math.Sqrt(float64(k))
	p := make([]float64, cfg.Users*k)
	q := make([]float64, cfg.Items*k)
	for i := range p {
		p[i] = rng.NormFloat64() * scale
	}
	for i := range q {
		q[i] = rng.NormFloat64() * scale
	}
	genres := make([]int, cfg.Items)
	for i := range genres {
		genres[i] = rng.Intn(cfg.Genres)
	}

	seen := make(map[int64]struct{}, cfg.NumRatings)
	data := &RatingsData{
		Config:     cfg,
		Ratings:    make([]Rating, 0, cfg.NumRatings),
		ItemGenre:  genres,
		userTotals: make([]cellStats, cfg.Users),
		itemTotals: make([]cellStats, cfg.Items),
	}
	skewed := func(n int, skew float64) int {
		if skew <= 0 {
			return rng.Intn(n)
		}
		idx := int(float64(n) * math.Pow(rng.Float64(), 1+skew))
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
	noise := cfg.RatingNoise
	if noise == 0 {
		noise = 0.4
	}
	dups := 0
	for len(data.Ratings) < cfg.NumRatings {
		u := skewed(cfg.Users, cfg.UserSkew)
		i := skewed(cfg.Items, cfg.ItemSkew)
		if dups > 500 {
			// The popularity head is saturated; fall back to uniform
			// sampling so generation always terminates.
			u, i = rng.Intn(cfg.Users), rng.Intn(cfg.Items)
		}
		key := int64(u)*int64(cfg.Items) + int64(i)
		if _, dup := seen[key]; dup {
			dups++
			continue
		}
		dups = 0
		seen[key] = struct{}{}
		var dot float64
		for t := 0; t < k; t++ {
			dot += p[u*k+t] * q[i*k+t]
		}
		v := math.Round(3 + dot + rng.NormFloat64()*noise)
		if v < 1 {
			v = 1
		} else if v > 5 {
			v = 5
		}
		data.Ratings = append(data.Ratings, Rating{User: u, Item: i, Value: v})
		data.userTotals[u].add(v)
		data.itemTotals[i].add(v)
	}
	return data, nil
}

// UserGenreIntervals builds the user-genre interval matrix of
// Supplementary F.2 (reconstruction evaluation): cell (u, g) spans the
// minimum to maximum rating user u gave to items of genre g; cells with
// no observations stay zero.
func (d *RatingsData) UserGenreIntervals() *imatrix.IMatrix {
	cfg := d.Config
	m := imatrix.New(cfg.Users, cfg.Genres)
	seen := make([]bool, cfg.Users*cfg.Genres)
	for _, r := range d.Ratings {
		g := d.ItemGenre[r.Item]
		idx := r.User*cfg.Genres + g
		if !seen[idx] {
			seen[idx] = true
			m.Set(r.User, g, interval.Scalar(r.Value))
			continue
		}
		cur := m.At(r.User, g)
		m.Set(r.User, g, cur.Hull(interval.Scalar(r.Value)))
	}
	return m
}

// UserItemScalar returns the sparse user-item rating matrix with zeros at
// unobserved cells.
func (d *RatingsData) UserItemScalar() *matrix.Dense {
	m := matrix.New(d.Config.Users, d.Config.Items)
	for _, r := range d.Ratings {
		m.Set(r.User, r.Item, r.Value)
	}
	return m
}

// UserItemCSR returns the user-item ratings in CSR form without
// materializing the dense matrix: O(NNZ) memory instead of
// O(Users·Items). The entry order matches sparse.FromDense of
// UserItemScalar, so training on either is bitwise identical.
func (d *RatingsData) UserItemCSR() *sparse.CSR {
	ts := make([]sparse.Triplet, len(d.Ratings))
	for k, r := range d.Ratings {
		ts[k] = sparse.Triplet{Row: r.User, Col: r.Item, Val: r.Value}
	}
	m, err := sparse.FromCOO(d.Config.Users, d.Config.Items, ts)
	if err != nil {
		// The generator guarantees in-range, duplicate-free cells.
		panic(fmt.Sprintf("dataset: UserItemCSR: %v", err))
	}
	return m
}

// CFIntervals applies the collaborative-filtering interval construction
// of Supplementary F.2 to the observed cells: for rating X_ij,
// S_ij collects every rating by user i or for item j, and
// I(X_ij) = [X_ij − δ, X_ij + δ] with δ = α·std(S_ij). Unobserved cells
// remain the scalar zero.
func (d *RatingsData) CFIntervals() *imatrix.IMatrix {
	cfg := d.Config
	out := imatrix.New(cfg.Users, cfg.Items)
	for _, r := range d.Ratings {
		delta := cfg.Alpha * d.unionStd(r.User, r.Item, r.Value)
		out.Set(r.User, r.Item, interval.New(r.Value-delta, r.Value+delta))
	}
	return out
}

// CFIntervalsCSR is CFIntervals in CSR form, computed straight from the
// rating list: the dense user-item matrix is never allocated, and each
// stored interval is the same [X_ij − δ, X_ij + δ] value CFIntervals
// produces, so sparse.FromIMatrix(d.CFIntervals()) and this function
// agree entry for entry.
func (d *RatingsData) CFIntervalsCSR() *sparse.ICSR {
	cfg := d.Config
	ts := make([]sparse.ITriplet, len(d.Ratings))
	for k, r := range d.Ratings {
		delta := cfg.Alpha * d.unionStd(r.User, r.Item, r.Value)
		ts[k] = sparse.ITriplet{Row: r.User, Col: r.Item, Lo: r.Value - delta, Hi: r.Value + delta}
	}
	m, err := sparse.FromICOO(cfg.Users, cfg.Items, ts)
	if err != nil {
		panic(fmt.Sprintf("dataset: CFIntervalsCSR: %v", err))
	}
	return m
}

// unionStd computes the standard deviation of the union of user u's
// ratings and item i's ratings (the cell itself counted once).
func (d *RatingsData) unionStd(u, i int, v float64) float64 {
	us, is := d.userTotals[u], d.itemTotals[i]
	n := us.n + is.n - 1
	if n <= 0 {
		return 0
	}
	sum := us.sum + is.sum - v
	sumSq := us.sumSq + is.sumSq - v*v
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// SplitRatings partitions the ratings into train and test sets with the
// given train fraction.
func (d *RatingsData) SplitRatings(trainFrac float64, rng *rand.Rand) (train, test []Rating) {
	idx := rng.Perm(len(d.Ratings))
	k := int(trainFrac * float64(len(d.Ratings)))
	train = make([]Rating, 0, k)
	test = make([]Rating, 0, len(d.Ratings)-k)
	for pos, ri := range idx {
		if pos < k {
			train = append(train, d.Ratings[ri])
		} else {
			test = append(test, d.Ratings[ri])
		}
	}
	return train, test
}

// MatrixStats summarizes an interval matrix the way Section 6.1.3 reports
// dataset statistics: matrix density (non-zero fraction), interval
// density (fraction of non-zeros that are genuine intervals), and mean
// interval intensity (mean span over non-zero interval cells).
type MatrixStats struct {
	MatrixDensity   float64
	IntervalDensity float64
	MeanIntensity   float64
}

// Stats computes MatrixStats for an interval matrix.
func Stats(m *imatrix.IMatrix) MatrixStats {
	var nonZero, intervals int
	var spanSum float64
	for i := range m.Lo.Data {
		lo, hi := m.Lo.Data[i], m.Hi.Data[i]
		if lo == 0 && hi == 0 {
			continue
		}
		nonZero++
		if hi > lo {
			intervals++
			spanSum += hi - lo
		}
	}
	st := MatrixStats{}
	total := m.Rows() * m.Cols()
	if total > 0 {
		st.MatrixDensity = float64(nonZero) / float64(total)
	}
	if nonZero > 0 {
		st.IntervalDensity = float64(intervals) / float64(nonZero)
	}
	if intervals > 0 {
		st.MeanIntensity = spanSum / float64(intervals)
	}
	return st
}
