// Package dataset provides every workload used by the paper's
// evaluation: uniform synthetic interval matrices (Table 1),
// generalization-anonymized matrices (Section 6.1.1), an ORL-like face
// image simulator with neighborhood-std intervals (Section 6.1.2,
// Supplementary F.1), and latent-factor rating simulators standing in for
// the MovieLens, Ciao, and Epinions datasets (Section 6.1.3,
// Supplementary F.2). Real ORL/MovieLens/Ciao/Epinions data is not
// redistributable or reachable offline; DESIGN.md documents how the
// simulators preserve the structure the experiments exercise.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/imatrix"
	"repro/internal/interval"
)

// SyntheticConfig describes a uniform synthetic interval matrix in the
// parameter space of the paper's Table 1.
type SyntheticConfig struct {
	Rows, Cols int
	// ZeroFrac is the "matrix density" parameter: the fraction of cells
	// forced to zero (paper values 0, 0.5, 0.9).
	ZeroFrac float64
	// IntervalDensity is the fraction of non-zero cells replaced by
	// intervals (paper values 0.05 … 1.0; default 1.0).
	IntervalDensity float64
	// Intensity bounds the interval size: the span is drawn uniformly
	// from [0, Intensity × cell value] (paper values 0.10 … 1.0;
	// default 1.0).
	Intensity float64
}

// DefaultSynthetic returns the bold default configuration of Table 1:
// a 40×250 fully dense matrix with 100% interval density and intensity.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Rows:            40,
		Cols:            250,
		ZeroFrac:        0,
		IntervalDensity: 1.0,
		Intensity:       1.0,
	}
}

// Validate reports configuration errors.
func (c SyntheticConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("dataset: non-positive shape %dx%d", c.Rows, c.Cols)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ZeroFrac", c.ZeroFrac},
		{"IntervalDensity", c.IntervalDensity},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("dataset: %s = %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.Intensity < 0 {
		return fmt.Errorf("dataset: negative Intensity %g", c.Intensity)
	}
	return nil
}

// GenerateUniform draws a random interval matrix: cell values are uniform
// in (0, 1], a ZeroFrac fraction is zeroed, and an IntervalDensity
// fraction of the surviving cells is widened into [v, v + span] with
// span ~ U(0, Intensity·v), per Section 6.1.1 ("the scope of the interval
// is uniformly selected between 0% and X% of the minimum value of the
// cell").
func GenerateUniform(cfg SyntheticConfig, rng *rand.Rand) (*imatrix.IMatrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := imatrix.New(cfg.Rows, cfg.Cols)
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			if rng.Float64() < cfg.ZeroFrac {
				continue // cell stays zero
			}
			v := 1 - rng.Float64() // uniform in (0, 1]
			if rng.Float64() < cfg.IntervalDensity {
				span := rng.Float64() * cfg.Intensity * v
				m.Set(i, j, interval.New(v, v+span))
			} else {
				m.Set(i, j, interval.Scalar(v))
			}
		}
	}
	return m, nil
}

// MustGenerateUniform is GenerateUniform panicking on config errors;
// for tests and benchmarks with static configurations.
func MustGenerateUniform(cfg SyntheticConfig, rng *rand.Rand) *imatrix.IMatrix {
	m, err := GenerateUniform(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}
