package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestDeltaCOORoundTrip(t *testing.T) {
	ts := []sparse.ITriplet{
		{Row: 2, Col: 1, Lo: 1.5, Hi: 1.5},
		{Row: 0, Col: 4, Lo: -2, Hi: 3},
		{Row: 2, Col: 0, Lo: 0, Hi: 0},
	}
	var buf bytes.Buffer
	if err := WriteDeltaCOO(&buf, 5, 6, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeltaCOO(&buf, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("got %d patches, want 3", len(back))
	}
	// Sorted by (row, col).
	want := []sparse.ITriplet{
		{Row: 0, Col: 4, Lo: -2, Hi: 3},
		{Row: 2, Col: 0, Lo: 0, Hi: 0},
		{Row: 2, Col: 1, Lo: 1.5, Hi: 1.5},
	}
	for k := range want {
		if back[k] != want[k] {
			t.Fatalf("patch %d: got %+v want %+v", k, back[k], want[k])
		}
	}
}

func TestDeltaCOOValidation(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"header mismatch rows", "6,6\n0,0,1\n"},
		{"header mismatch cols", "5,7\n0,0,1\n"},
		{"out of range", "5,6\n5,0,1\n"},
		{"duplicate", "5,6\n1,1,1\n1,1,2\n"},
		{"misordered", "5,6\n0,0,3..1\n"},
		{"non-finite", "5,6\n0,0,Inf\n"},
	}
	for _, tc := range cases {
		if _, err := ReadDeltaCOO(strings.NewReader(tc.in), 5, 6); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	// Empty batch is legal.
	ts, err := ReadDeltaCOO(strings.NewReader("5,6\n"), 5, 6)
	if err != nil || len(ts) != 0 {
		t.Errorf("empty batch: %v, %d patches", err, len(ts))
	}
	// Writer rejects out-of-range cells too.
	var buf bytes.Buffer
	if err := WriteDeltaCOO(&buf, 2, 2, []sparse.ITriplet{{Row: 2, Col: 0}}); err == nil {
		t.Error("WriteDeltaCOO accepted out-of-range cell")
	}
}
