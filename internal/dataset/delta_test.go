package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// deltaBase builds the 5×6 base matrix the delta tests read against,
// with stored cells at (0,4), (2,0), (2,1), (3,3).
func deltaBase(t *testing.T) *sparse.ICSR {
	t.Helper()
	m, err := sparse.FromICOO(5, 6, []sparse.ITriplet{
		{Row: 0, Col: 4, Lo: 1, Hi: 1},
		{Row: 2, Col: 0, Lo: 2, Hi: 3},
		{Row: 2, Col: 1, Lo: 0, Hi: 0}, // stored explicit zero
		{Row: 3, Col: 3, Lo: -1, Hi: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeltaCOORoundTrip(t *testing.T) {
	ts := []sparse.ITriplet{
		{Row: 2, Col: 1, Lo: 1.5, Hi: 1.5},
		{Row: 0, Col: 4, Lo: -2, Hi: 3},
		{Row: 2, Col: 0, Lo: 0, Hi: 0},
	}
	var buf bytes.Buffer
	if err := WriteDeltaCOO(&buf, 5, 6, ts); err != nil {
		t.Fatal(err)
	}
	batch, err := ReadDeltaCOO(&buf, deltaBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Patch) != 3 || len(batch.Tombstones) != 0 {
		t.Fatalf("got %d patches and %d tombstones, want 3 and 0", len(batch.Patch), len(batch.Tombstones))
	}
	// Sorted by (row, col).
	want := []sparse.ITriplet{
		{Row: 0, Col: 4, Lo: -2, Hi: 3},
		{Row: 2, Col: 0, Lo: 0, Hi: 0},
		{Row: 2, Col: 1, Lo: 1.5, Hi: 1.5},
	}
	for k := range want {
		if batch.Patch[k] != want[k] {
			t.Fatalf("patch %d: got %+v want %+v", k, batch.Patch[k], want[k])
		}
	}
}

func TestDeltaBatchCOOTombstones(t *testing.T) {
	base := deltaBase(t)
	in := DeltaBatch{
		Patch:      []sparse.ITriplet{{Row: 1, Col: 2, Lo: 4, Hi: 5}},
		Tombstones: []sparse.Cell{{Row: 2, Col: 0}, {Row: 2, Col: 1}},
	}
	var buf bytes.Buffer
	if err := WriteDeltaBatchCOO(&buf, 5, 6, in); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "2,0,x") || !strings.Contains(text, "2,1,x") {
		t.Fatalf("tombstone records missing from %q", text)
	}
	batch, err := ReadDeltaCOO(strings.NewReader(text), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Patch) != 1 || len(batch.Tombstones) != 2 {
		t.Fatalf("got %d patches and %d tombstones, want 1 and 2", len(batch.Patch), len(batch.Tombstones))
	}
	if batch.Tombstones[0] != (sparse.Cell{Row: 2, Col: 0}) || batch.Tombstones[1] != (sparse.Cell{Row: 2, Col: 1}) {
		t.Fatalf("tombstones %+v", batch.Tombstones)
	}
	// A tombstone on a stored explicit zero is legal (the cell IS
	// stored); a tombstone on a never-inserted cell is not.
	if _, err := ReadDeltaCOO(strings.NewReader("5,6\n0,0,x\n"), base); err == nil {
		t.Fatal("accepted tombstone for never-inserted cell")
	}
	// A cell cannot be both patched and tombstoned in one batch.
	if _, err := ReadDeltaCOO(strings.NewReader("5,6\n2,0,1\n2,0,x\n"), base); err == nil {
		t.Fatal("accepted cell both patched and tombstoned")
	}
	var dup bytes.Buffer
	err = WriteDeltaBatchCOO(&dup, 5, 6, DeltaBatch{
		Patch:      []sparse.ITriplet{{Row: 2, Col: 0, Lo: 1, Hi: 1}},
		Tombstones: []sparse.Cell{{Row: 2, Col: 0}},
	})
	if err == nil {
		t.Fatal("WriteDeltaBatchCOO accepted a cell both patched and tombstoned")
	}
}

func TestDeltaCOOValidation(t *testing.T) {
	base := deltaBase(t)
	cases := []struct {
		name, in string
	}{
		{"header mismatch rows", "6,6\n0,0,1\n"},
		{"header mismatch cols", "5,7\n0,0,1\n"},
		{"out of range", "5,6\n5,0,1\n"},
		{"duplicate", "5,6\n1,1,1\n1,1,2\n"},
		{"misordered", "5,6\n0,0,3..1\n"},
		{"non-finite", "5,6\n0,0,Inf\n"},
		{"tombstone out of range", "5,6\n5,0,x\n"},
		{"duplicate tombstone", "5,6\n2,0,x\n2,0,x\n"},
		{"tombstone never inserted", "5,6\n4,4,x\n"},
	}
	for _, tc := range cases {
		if _, err := ReadDeltaCOO(strings.NewReader(tc.in), base); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	// Empty batch is legal.
	batch, err := ReadDeltaCOO(strings.NewReader("5,6\n"), base)
	if err != nil || len(batch.Patch) != 0 || len(batch.Tombstones) != 0 {
		t.Errorf("empty batch: %v, %d patches, %d tombstones", err, len(batch.Patch), len(batch.Tombstones))
	}
	// Writer rejects out-of-range cells too.
	var buf bytes.Buffer
	if err := WriteDeltaCOO(&buf, 2, 2, []sparse.ITriplet{{Row: 2, Col: 0}}); err == nil {
		t.Error("WriteDeltaCOO accepted out-of-range cell")
	}
}

func TestWindowSplitReplayEqualsWindow(t *testing.T) {
	// Dense-ish 12×9 matrix so the split has cells to move.
	ts := make([]sparse.ITriplet, 0, 12*9)
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			if (i+j)%2 == 0 {
				ts = append(ts, sparse.ITriplet{Row: i, Col: j, Lo: float64(i + 1), Hi: float64(i + j + 1)})
			}
		}
	}
	m, err := sparse.FromICOO(12, 9, ts)
	if err != nil {
		t.Fatal(err)
	}
	base, batches, err := WindowSplit(m, 0.4, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sparse.FromICOO(12, 9, base)
	if err != nil {
		t.Fatal(err)
	}
	live := len(base)
	for k, b := range batches {
		if len(b.Patch) != len(b.Tombstones) {
			t.Fatalf("batch %d: %d arrivals but %d expiries — window size must stay constant",
				k, len(b.Patch), len(b.Tombstones))
		}
		if cur, err = cur.ApplyPatch(b.Patch); err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if cur, err = cur.ApplyUnpatch(b.Tombstones); err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if cur.NNZ() != live {
			t.Fatalf("batch %d: window has %d cells, want %d", k, cur.NNZ(), live)
		}
	}
	// The replayed window is exactly base ∪ stream minus the expired
	// prefix: every surviving cell must match the source matrix.
	cur.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		for p, j := range cols {
			want := m.At(i, j)
			if lo[p] != want.Lo || hi[p] != want.Hi {
				t.Fatalf("cell (%d, %d): [%g, %g] want [%g, %g]", i, j, lo[p], hi[p], want.Lo, want.Hi)
			}
		}
	})
	// Pin determinism: the same seed reproduces the same split.
	base2, batches2, err := WindowSplit(m, 0.4, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(base2) != len(base) || len(batches2) != len(batches) {
		t.Fatal("WindowSplit is not deterministic for a fixed seed")
	}
	for k := range base {
		if base2[k] != base[k] {
			t.Fatal("WindowSplit base differs for a fixed seed")
		}
	}
	for k := range batches {
		for i := range batches[k].Tombstones {
			if batches2[k].Tombstones[i] != batches[k].Tombstones[i] {
				t.Fatal("WindowSplit tombstones differ for a fixed seed")
			}
		}
	}
}
