package dataset

// Fuzz coverage for the two text parsers, which previously had no
// malformed-input tests. The seed corpora run as part of plain `go test`
// (and under -race in CI); `go test -fuzz=FuzzReadIntervalCSV` (or
// ...COO) explores further. Properties checked: the parsers never panic,
// and anything they accept survives a write/read round trip unchanged.

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadIntervalCSV(f *testing.F) {
	seeds := []string{
		"1,2..3,0.5\n0.9..1.1,2,0.6\n",
		"1.5\n",
		"1e300..1e301\n",
		"-4..-2,0\n0,3\n",
		"", ",\n", "a,b\n", "1,2\n3\n", "..", "1..", "..2\n", "1..2..3\n",
		"5..1\n",          // misordered
		"NaN\n", "+Inf\n", // parse but fail downstream validation if any
		"\"1,2\",3\n",
		strings.Repeat("1,", 100) + "1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadIntervalCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input: well-formed matrix that round-trips.
		if !m.IsWellFormed() {
			t.Fatalf("accepted misordered matrix from %q", in)
		}
		var buf bytes.Buffer
		if err := WriteIntervalCSV(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadIntervalCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Rows() != m.Rows() || back.Cols() != m.Cols() {
			t.Fatalf("round trip shape %dx%d, want %dx%d", back.Rows(), back.Cols(), m.Rows(), m.Cols())
		}
		for i := range m.Lo.Data {
			if back.Lo.Data[i] != m.Lo.Data[i] || back.Hi.Data[i] != m.Hi.Data[i] {
				t.Fatalf("round trip element %d differs", i)
			}
		}
	})
}

func FuzzReadDeltaCOO(f *testing.F) {
	seeds := []string{
		"4,3\n0,0,1\n3,2,2..3\n",  // in-range patches
		"4,3\n",                   // empty batch
		"4,3\n0,0,1\n0,0,2\n",     // duplicate patch
		"4,3\n4,0,1\n",            // row at base boundary (out of range)
		"4,3\n0,3,1\n",            // col at base boundary
		"5,3\n0,0,1\n",            // header taller than base
		"4,4\n0,0,1\n",            // header wider than base
		"4,3\n-1,0,1\n",           // negative index
		"4,3\n0,0,5..1\n",         // misordered interval
		"4,3\n0,0,NaN\n",          // non-finite value
		"99999999999,3\n0,0,1\n",  // hostile header
		"16777217,3\n",            // above the dim cap
		"x,3\n", "4\n", "4,3,9\n", // malformed headers
		"4,3\n0,0\n", "4,3\na,0,1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	const baseRows, baseCols = 4, 3
	f.Fuzz(func(t *testing.T, in string) {
		ts, err := ReadDeltaCOO(strings.NewReader(in), baseRows, baseCols)
		if err != nil {
			return
		}
		// Accepted batch: every patch targets a base cell, no duplicates,
		// ordered finite intervals, and a write/read round trip preserves
		// the set.
		for k, p := range ts {
			if p.Row < 0 || p.Row >= baseRows || p.Col < 0 || p.Col >= baseCols {
				t.Fatalf("accepted out-of-range patch (%d, %d) from %q", p.Row, p.Col, in)
			}
			if p.Lo > p.Hi {
				t.Fatalf("accepted misordered patch from %q", in)
			}
			if k > 0 && ts[k-1].Row == p.Row && ts[k-1].Col == p.Col {
				t.Fatalf("accepted duplicate patch (%d, %d) from %q", p.Row, p.Col, in)
			}
		}
		var buf bytes.Buffer
		if err := WriteDeltaCOO(&buf, baseRows, baseCols, ts); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadDeltaCOO(&buf, baseRows, baseCols)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip count %d, want %d", len(back), len(ts))
		}
		for k := range ts {
			if back[k] != ts[k] {
				t.Fatalf("round trip patch %d differs", k)
			}
		}
	})
}

func FuzzReadIntervalCOO(f *testing.F) {
	seeds := []string{
		"2,2\n0,0,1\n1,1,2..3\n",
		"1,1\n",
		"3,4\n2,3,-1..5\n0,0,0.5\n",
		"2,2\n0,0,1\n0,0,2\n", // duplicate
		"2,2\n2,0,1\n",        // out of range
		"0,2\n", "x,2\n", "2\n", "2,2\n0,0\n", "2,2\na,0,1\n",
		"99999999999,2\n",
		"2,2\n0,0,5..1\n",
		"2,2\n-1,0,1\n",
		"16777217,1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadIntervalCOO(strings.NewReader(in))
		if err != nil {
			return
		}
		if !m.IsWellFormed() {
			t.Fatalf("accepted misordered matrix from %q", in)
		}
		var buf bytes.Buffer
		if err := WriteIntervalCOO(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadIntervalCOO(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip shape/NNZ mismatch")
		}
		for p := range m.ColInd {
			if back.ColInd[p] != m.ColInd[p] || back.Lo[p] != m.Lo[p] || back.Hi[p] != m.Hi[p] {
				t.Fatalf("round trip entry %d differs", p)
			}
		}
	})
}
