package dataset

// Fuzz coverage for the two text parsers, which previously had no
// malformed-input tests. The seed corpora run as part of plain `go test`
// (and under -race in CI); `go test -fuzz=FuzzReadIntervalCSV` (or
// ...COO) explores further. Properties checked: the parsers never panic,
// and anything they accept survives a write/read round trip unchanged.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func FuzzReadIntervalCSV(f *testing.F) {
	seeds := []string{
		"1,2..3,0.5\n0.9..1.1,2,0.6\n",
		"1.5\n",
		"1e300..1e301\n",
		"-4..-2,0\n0,3\n",
		"", ",\n", "a,b\n", "1,2\n3\n", "..", "1..", "..2\n", "1..2..3\n",
		"5..1\n",          // misordered
		"NaN\n", "+Inf\n", // parse but fail downstream validation if any
		"\"1,2\",3\n",
		strings.Repeat("1,", 100) + "1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadIntervalCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input: well-formed matrix that round-trips.
		if !m.IsWellFormed() {
			t.Fatalf("accepted misordered matrix from %q", in)
		}
		var buf bytes.Buffer
		if err := WriteIntervalCSV(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadIntervalCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Rows() != m.Rows() || back.Cols() != m.Cols() {
			t.Fatalf("round trip shape %dx%d, want %dx%d", back.Rows(), back.Cols(), m.Rows(), m.Cols())
		}
		for i := range m.Lo.Data {
			if back.Lo.Data[i] != m.Lo.Data[i] || back.Hi.Data[i] != m.Hi.Data[i] {
				t.Fatalf("round trip element %d differs", i)
			}
		}
	})
}

func FuzzReadDeltaCOO(f *testing.F) {
	seeds := []string{
		"4,3\n0,0,1\n3,2,2..3\n",  // in-range patches
		"4,3\n",                   // empty batch
		"4,3\n0,0,1\n0,0,2\n",     // duplicate patch
		"4,3\n4,0,1\n",            // row at base boundary (out of range)
		"4,3\n0,3,1\n",            // col at base boundary
		"5,3\n0,0,1\n",            // header taller than base
		"4,4\n0,0,1\n",            // header wider than base
		"4,3\n-1,0,1\n",           // negative index
		"4,3\n0,0,5..1\n",         // misordered interval
		"4,3\n0,0,NaN\n",          // non-finite value
		"99999999999,3\n0,0,1\n",  // hostile header
		"16777217,3\n",            // above the dim cap
		"x,3\n", "4\n", "4,3,9\n", // malformed headers
		"4,3\n0,0\n", "4,3\na,0,1\n",
		// Tombstone framings against the fixed base below.
		"4,3\n0,0,x\n",          // tombstone for a stored cell
		"4,3\n2,1,x\n",          // tombstone for a stored explicit zero
		"4,3\n1,2,x\n",          // tombstone for a never-inserted cell
		"4,3\n0,0,1\n0,0,x\n",   // cell both patched and tombstoned
		"4,3\n0,0,x\n0,0,x\n",   // duplicate tombstone
		"4,3\n4,0,x\n",          // tombstone out of range
		"4,3\n0,0,X\n",          // wrong-case token is not a tombstone
		"4,3\n0,0,xx\n",         // near-miss token
		"4,3\n0,0,x\n3,2,1.5\n", // mixed tombstone and patch
	}
	for _, s := range seeds {
		f.Add(s)
	}
	const baseRows, baseCols = 4, 3
	base, err := sparse.FromICOO(baseRows, baseCols, []sparse.ITriplet{
		{Row: 0, Col: 0, Lo: 1, Hi: 2},
		{Row: 2, Col: 1, Lo: 0, Hi: 0}, // stored explicit zero
		{Row: 3, Col: 2, Lo: -1, Hi: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, in string) {
		batch, err := ReadDeltaCOO(strings.NewReader(in), base)
		if err != nil {
			return
		}
		// Accepted batch: every patch targets a base cell, no duplicate
		// operations (a cell appears at most once, as a patch or a
		// tombstone), ordered finite intervals, tombstones only for stored
		// cells, and a write/read round trip preserves the operation set.
		type key struct{ row, col int }
		seen := make(map[key]bool, len(batch.Patch)+len(batch.Tombstones))
		for _, p := range batch.Patch {
			if p.Row < 0 || p.Row >= baseRows || p.Col < 0 || p.Col >= baseCols {
				t.Fatalf("accepted out-of-range patch (%d, %d) from %q", p.Row, p.Col, in)
			}
			if p.Lo > p.Hi {
				t.Fatalf("accepted misordered patch from %q", in)
			}
			if seen[key{p.Row, p.Col}] {
				t.Fatalf("accepted duplicate cell (%d, %d) from %q", p.Row, p.Col, in)
			}
			seen[key{p.Row, p.Col}] = true
		}
		for _, c := range batch.Tombstones {
			if c.Row < 0 || c.Row >= baseRows || c.Col < 0 || c.Col >= baseCols {
				t.Fatalf("accepted out-of-range tombstone (%d, %d) from %q", c.Row, c.Col, in)
			}
			if seen[key{c.Row, c.Col}] {
				t.Fatalf("accepted duplicate cell (%d, %d) from %q", c.Row, c.Col, in)
			}
			seen[key{c.Row, c.Col}] = true
			// At can't distinguish a stored zero from an unobserved
			// cell, so check storedness against the row's column list.
			cols, _, _ := base.RowView(c.Row)
			stored := false
			for _, j := range cols {
				if j == c.Col {
					stored = true
				}
			}
			if !stored {
				t.Fatalf("accepted tombstone for never-inserted cell (%d, %d) from %q", c.Row, c.Col, in)
			}
		}
		var buf bytes.Buffer
		if err := WriteDeltaBatchCOO(&buf, baseRows, baseCols, batch); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadDeltaCOO(&buf, base)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back.Patch) != len(batch.Patch) || len(back.Tombstones) != len(batch.Tombstones) {
			t.Fatalf("round trip counts %d/%d, want %d/%d",
				len(back.Patch), len(back.Tombstones), len(batch.Patch), len(batch.Tombstones))
		}
		for k := range batch.Patch {
			if back.Patch[k] != batch.Patch[k] {
				t.Fatalf("round trip patch %d differs", k)
			}
		}
		for k := range batch.Tombstones {
			if back.Tombstones[k] != batch.Tombstones[k] {
				t.Fatalf("round trip tombstone %d differs", k)
			}
		}
	})
}

func FuzzReadIntervalCOO(f *testing.F) {
	seeds := []string{
		"2,2\n0,0,1\n1,1,2..3\n",
		"1,1\n",
		"3,4\n2,3,-1..5\n0,0,0.5\n",
		"2,2\n0,0,1\n0,0,2\n", // duplicate
		"2,2\n2,0,1\n",        // out of range
		"0,2\n", "x,2\n", "2\n", "2,2\n0,0\n", "2,2\na,0,1\n",
		"99999999999,2\n",
		"2,2\n0,0,5..1\n",
		"2,2\n-1,0,1\n",
		"16777217,1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadIntervalCOO(strings.NewReader(in))
		if err != nil {
			return
		}
		if !m.IsWellFormed() {
			t.Fatalf("accepted misordered matrix from %q", in)
		}
		var buf bytes.Buffer
		if err := WriteIntervalCOO(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadIntervalCOO(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip shape/NNZ mismatch")
		}
		for p := range m.ColInd {
			if back.ColInd[p] != m.ColInd[p] || back.Lo[p] != m.Lo[p] || back.Hi[p] != m.Hi[p] {
				t.Fatalf("round trip entry %d differs", p)
			}
		}
	})
}
