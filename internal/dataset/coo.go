package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sparse"
)

// Interval COO format: a CSV whose first record is the matrix shape
// "rows,cols" and whose remaining records are one observed cell each,
// "row,col,value" with the value in the interval cell syntax of
// ReadIntervalCSV ("1.5" or "1.0..2.5"). Only observed cells are stored,
// so a 1%-dense ratings matrix costs 1% of the dense CSV — this is the
// on-disk form the sparse ratings paths load.

// WriteIntervalCOO writes the stored cells of m in the interval COO
// format, in row-major order.
func WriteIntervalCOO(w io.Writer, m *sparse.ICSR) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{strconv.Itoa(m.Rows), strconv.Itoa(m.Cols)}); err != nil {
		return err
	}
	var werr error
	m.ForEachRow(func(i int, cols []int, lo, hi []float64) {
		if werr != nil {
			return
		}
		for p, j := range cols {
			cell := formatFloat(lo[p])
			if hi[p] != lo[p] {
				cell = formatFloat(lo[p]) + ".." + formatFloat(hi[p])
			}
			if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(j), cell}); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadIntervalCOO parses the interval COO format into a sparse interval
// matrix. Malformed shapes, out-of-range or duplicate cells, and
// misordered intervals (lo > hi) are errors.
func ReadIntervalCOO(r io.Reader) (*sparse.ICSR, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // header is 2 fields, cells are 3
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty COO file")
	}
	header := records[0]
	if len(header) != 2 {
		return nil, fmt.Errorf("dataset: COO header has %d fields, want 2 (rows,cols)", len(header))
	}
	rows, err := parseDim(header[0])
	if err != nil {
		return nil, fmt.Errorf("dataset: COO rows: %w", err)
	}
	cols, err := parseDim(header[1])
	if err != nil {
		return nil, fmt.Errorf("dataset: COO cols: %w", err)
	}
	ts := make([]sparse.ITriplet, 0, len(records)-1)
	for k, rec := range records[1:] {
		if len(rec) != 3 {
			return nil, fmt.Errorf("dataset: COO record %d has %d fields, want 3", k+1, len(rec))
		}
		i, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: COO record %d: bad row %q", k+1, rec[0])
		}
		j, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: COO record %d: bad col %q", k+1, rec[1])
		}
		lo, hi, err := parseCell(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: COO record %d: %w", k+1, err)
		}
		ts = append(ts, sparse.ITriplet{Row: i, Col: j, Lo: lo, Hi: hi})
	}
	m, err := sparse.FromICOO(rows, cols, ts)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if !m.IsWellFormed() {
		return nil, fmt.Errorf("dataset: COO contains misordered intervals (lo > hi)")
	}
	return m, nil
}

// maxCOODim bounds the declared matrix shape so a malformed or hostile
// header cannot force a multi-gigabyte row-pointer allocation before the
// cell count is even known.
const maxCOODim = 1 << 24

func parseDim(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad dimension %q", s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("non-positive dimension %d", n)
	}
	if n > maxCOODim {
		return 0, fmt.Errorf("dimension %d exceeds limit %d", n, maxCOODim)
	}
	return n, nil
}
