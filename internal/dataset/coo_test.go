package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestIntervalCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rc := RatingsConfig{Users: 30, Items: 40, Genres: 5, NumRatings: 90, LatentRank: 3, Alpha: 0.4}
	data, err := GenerateRatings(rc, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := data.CFIntervalsCSR()

	var buf bytes.Buffer
	if err := WriteIntervalCOO(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIntervalCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape/NNZ mismatch: %dx%d/%d vs %dx%d/%d",
			back.Rows, back.Cols, back.NNZ(), m.Rows, m.Cols, m.NNZ())
	}
	for p := range m.ColInd {
		if back.ColInd[p] != m.ColInd[p] || back.Lo[p] != m.Lo[p] || back.Hi[p] != m.Hi[p] {
			t.Fatalf("entry %d differs after round trip", p)
		}
	}
}

func TestReadIntervalCOOErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header width", "3\n"},
		{"bad rows", "x,3\n"},
		{"zero cols", "3,0\n"},
		{"huge dims", "99999999999,3\n"},
		{"record width", "2,2\n0,0\n"},
		{"bad row index", "2,2\nx,0,1\n"},
		{"bad col index", "2,2\n0,x,1\n"},
		{"bad cell", "2,2\n0,0,abc\n"},
		{"out of range", "2,2\n2,0,1\n"},
		{"duplicate", "2,2\n0,0,1\n0,0,2\n"},
		{"misordered", "2,2\n0,0,5..1\n"},
	}
	for _, c := range cases {
		if _, err := ReadIntervalCOO(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCFIntervalsCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rc := MovieLensLike().Scaled(0.03)
	data, err := GenerateRatings(rc, rng)
	if err != nil {
		t.Fatal(err)
	}
	fromDense := sparse.FromIMatrix(data.CFIntervals())
	direct := data.CFIntervalsCSR()
	if fromDense.NNZ() != direct.NNZ() {
		t.Fatalf("NNZ %d vs %d", fromDense.NNZ(), direct.NNZ())
	}
	for p := range fromDense.ColInd {
		if fromDense.ColInd[p] != direct.ColInd[p] ||
			fromDense.Lo[p] != direct.Lo[p] || fromDense.Hi[p] != direct.Hi[p] {
			t.Fatalf("entry %d differs between dense and direct CSR construction", p)
		}
	}

	scalarDense := sparse.FromDense(data.UserItemScalar())
	scalarDirect := data.UserItemCSR()
	if scalarDense.NNZ() != scalarDirect.NNZ() {
		t.Fatalf("scalar NNZ %d vs %d", scalarDense.NNZ(), scalarDirect.NNZ())
	}
	for p := range scalarDense.ColInd {
		if scalarDense.ColInd[p] != scalarDirect.ColInd[p] || scalarDense.Val[p] != scalarDirect.Val[p] {
			t.Fatalf("scalar entry %d differs", p)
		}
	}
}

func TestWithDensity(t *testing.T) {
	rc := RatingsConfig{Users: 100, Items: 200, Genres: 5, NumRatings: 999, LatentRank: 3, Alpha: 0.4}
	if got := rc.WithDensity(0.01).NumRatings; got != 200 {
		t.Errorf("1%% density: NumRatings = %d, want 200", got)
	}
	if got := rc.WithDensity(0).NumRatings; got != 1 {
		t.Errorf("zero density: NumRatings = %d, want 1", got)
	}
	if got := rc.WithDensity(1).NumRatings; got != 100*200/2 {
		t.Errorf("full density: NumRatings = %d, want cap %d", got, 100*200/2)
	}
	if err := rc.WithDensity(0.05).Validate(); err != nil {
		t.Errorf("WithDensity produced invalid config: %v", err)
	}
}
