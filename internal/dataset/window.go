package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/sparse"
)

// Sliding-window delta format: the delta COO layout of delta.go
// extended with tombstone records. A tombstone is a record whose value
// field is the single token "x" — a deletion has no value, only a
// position — so "3,7,x" expires cell (3, 7) while "3,7,1.5" patches it.
// One batch is an unambiguous set of cell operations: a cell may appear
// at most once, as either a patch or a tombstone. cmd/datagen's -window
// flag emits these files; core.Delta.Patch/Unpatch consume them.

// tombstoneCell is the value token of a tombstone record. It can never
// collide with an interval cell: parseCell requires a float or
// "lo..hi".
const tombstoneCell = "x"

// DeltaBatch is one parsed sliding-window batch: cell patches (set
// semantics) plus tombstones (cells reverting to unobserved).
type DeltaBatch struct {
	Patch      []sparse.ITriplet
	Tombstones []sparse.Cell
}

// WriteDeltaBatchCOO writes a sliding-window batch in the delta COO
// format for a base matrix of the given shape. Records are emitted in
// (row, col) order with patches and tombstones interleaved, so the
// output is uniquely determined by the batch's operation set.
// Everything ReadDeltaCOO would refuse shape-wise — out-of-range cells,
// duplicates (including a cell both patched and tombstoned), misordered
// or non-finite intervals — fails at write time; only the
// against-the-base storedness of tombstones is a read-time check.
func WriteDeltaBatchCOO(w io.Writer, rows, cols int, batch DeltaBatch) error {
	type rec struct {
		row, col int
		cell     string
	}
	recs := make([]rec, 0, len(batch.Patch)+len(batch.Tombstones))
	for _, t := range batch.Patch {
		if math.IsNaN(t.Lo) || math.IsInf(t.Lo, 0) || math.IsNaN(t.Hi) || math.IsInf(t.Hi, 0) {
			return fmt.Errorf("dataset: WriteDeltaBatchCOO: cell (%d, %d) has a non-finite endpoint", t.Row, t.Col)
		}
		if t.Lo > t.Hi {
			return fmt.Errorf("dataset: WriteDeltaBatchCOO: cell (%d, %d) is misordered (lo > hi)", t.Row, t.Col)
		}
		cell := formatFloat(t.Lo)
		if t.Hi != t.Lo {
			cell = formatFloat(t.Lo) + ".." + formatFloat(t.Hi)
		}
		recs = append(recs, rec{t.Row, t.Col, cell})
	}
	for _, c := range batch.Tombstones {
		recs = append(recs, rec{c.Row, c.Col, tombstoneCell})
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].row != recs[b].row {
			return recs[a].row < recs[b].row
		}
		return recs[a].col < recs[b].col
	})
	for k, rc := range recs {
		if rc.row < 0 || rc.row >= rows || rc.col < 0 || rc.col >= cols {
			return fmt.Errorf("dataset: WriteDeltaBatchCOO: cell (%d, %d) outside %dx%d", rc.row, rc.col, rows, cols)
		}
		if k > 0 && rc.row == recs[k-1].row && rc.col == recs[k-1].col {
			return fmt.Errorf("dataset: WriteDeltaBatchCOO: duplicate cell (%d, %d)", rc.row, rc.col)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{strconv.Itoa(rows), strconv.Itoa(cols)}); err != nil {
		return err
	}
	for _, rc := range recs {
		if err := cw.Write([]string{strconv.Itoa(rc.row), strconv.Itoa(rc.col), rc.cell}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseDeltaCOO parses the delta COO format standalone, without a base
// matrix: it returns the declared shape and the batch, after every
// shape-independent check — well-formed header, in-range duplicate-free
// cells, finite ordered intervals. Callers that hold the base matrix
// should use ReadDeltaCOO, which additionally pins the header to the
// base shape and rejects tombstones for never-inserted cells.
func ParseDeltaCOO(r io.Reader) (rows, cols int, batch DeltaBatch, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // header is 2 fields, cells are 3
	records, err := cr.ReadAll()
	if err != nil {
		return 0, 0, DeltaBatch{}, err
	}
	if len(records) == 0 {
		return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: empty delta COO file")
	}
	header := records[0]
	if len(header) != 2 {
		return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO header has %d fields, want 2 (rows,cols)", len(header))
	}
	if rows, err = parseDim(header[0]); err != nil {
		return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO rows: %w", err)
	}
	if cols, err = parseDim(header[1]); err != nil {
		return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO cols: %w", err)
	}
	type key struct{ row, col int }
	seen := make(map[key]bool, len(records)-1)
	for k, rec := range records[1:] {
		if len(rec) != 3 {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d has %d fields, want 3", k+1, len(rec))
		}
		i, err := strconv.Atoi(rec[0])
		if err != nil {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: bad row %q", k+1, rec[0])
		}
		j, err := strconv.Atoi(rec[1])
		if err != nil {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: bad col %q", k+1, rec[1])
		}
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: cell (%d, %d) outside %dx%d", k+1, i, j, rows, cols)
		}
		if seen[key{i, j}] {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: duplicate cell (%d, %d)", k+1, i, j)
		}
		seen[key{i, j}] = true
		if rec[2] == tombstoneCell {
			batch.Tombstones = append(batch.Tombstones, sparse.Cell{Row: i, Col: j})
			continue
		}
		lo, hi, err := parseCell(rec[2])
		if err != nil {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: %w", k+1, err)
		}
		if lo > hi {
			return 0, 0, DeltaBatch{}, fmt.Errorf("dataset: delta COO record %d: misordered interval (lo > hi)", k+1)
		}
		batch.Patch = append(batch.Patch, sparse.ITriplet{Row: i, Col: j, Lo: lo, Hi: hi})
	}
	return rows, cols, batch, nil
}

// ReadDeltaCOO parses a delta COO file as one batch against the base
// matrix the stream has reached. The file's header must match the base
// shape, and every tombstone must address a cell currently stored in
// the base: a tombstone for a never-inserted cell means the stream and
// the model disagree about history and is rejected at read time, before
// anything downstream applies a partial batch. Patches are returned
// sorted by (row, col); tombstones likewise.
func ReadDeltaCOO(r io.Reader, base *sparse.ICSR) (DeltaBatch, error) {
	rows, cols, batch, err := ParseDeltaCOO(r)
	if err != nil {
		return DeltaBatch{}, err
	}
	if rows != base.Rows || cols != base.Cols {
		return DeltaBatch{}, fmt.Errorf("dataset: delta header %dx%d does not match base matrix %dx%d", rows, cols, base.Rows, base.Cols)
	}
	for _, c := range batch.Tombstones {
		if !cellStored(base, c.Row, c.Col) {
			return DeltaBatch{}, fmt.Errorf("dataset: delta tombstone for never-inserted cell (%d, %d)", c.Row, c.Col)
		}
	}
	sort.Slice(batch.Patch, func(a, b int) bool {
		if batch.Patch[a].Row != batch.Patch[b].Row {
			return batch.Patch[a].Row < batch.Patch[b].Row
		}
		return batch.Patch[a].Col < batch.Patch[b].Col
	})
	sort.Slice(batch.Tombstones, func(a, b int) bool {
		if batch.Tombstones[a].Row != batch.Tombstones[b].Row {
			return batch.Tombstones[a].Row < batch.Tombstones[b].Row
		}
		return batch.Tombstones[a].Col < batch.Tombstones[b].Col
	})
	return batch, nil
}

// cellStored reports whether (i, j) is a stored cell of m — distinct
// from At, which cannot tell a stored explicit zero from an unobserved
// cell.
func cellStored(m *sparse.ICSR, i, j int) bool {
	cols, _, _ := m.RowView(i)
	for _, c := range cols {
		if c == j {
			return true
		}
		if c > j {
			break
		}
	}
	return false
}

// WindowSplit derives a sliding-window stream from m: the base is the
// initial window (the StreamSplit base sample), and each batch appends
// the next arriving cells while tombstoning equally many of the oldest
// live cells (FIFO in split order), so the window size stays constant
// across the stream. Like StreamSplit it is a pure function of
// (m, frac, batches, rng state); replaying base + all batches yields
// exactly the final window's cell set.
func WindowSplit(m *sparse.ICSR, frac float64, batches int, rng *rand.Rand) (base []sparse.ITriplet, wbatches []DeltaBatch, err error) {
	base, deltas, err := StreamSplit(m, frac, batches, rng)
	if err != nil {
		return nil, nil, err
	}
	window := append([]sparse.ITriplet(nil), base...) // FIFO of live cells
	head := 0
	wbatches = make([]DeltaBatch, len(deltas))
	for k, d := range deltas {
		tomb := make([]sparse.Cell, 0, len(d))
		for i := 0; i < len(d) && head < len(window); i++ {
			c := window[head]
			head++
			tomb = append(tomb, sparse.Cell{Row: c.Row, Col: c.Col})
		}
		window = append(window, d...)
		wbatches[k] = DeltaBatch{
			Patch:      append([]sparse.ITriplet(nil), d...),
			Tombstones: tomb,
		}
	}
	return base, wbatches, nil
}
