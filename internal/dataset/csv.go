package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/imatrix"
)

// Interval CSV cell format: a scalar cell is a plain number ("1.5"); an
// interval cell is "lo..hi" ("1.0..2.5"). This keeps files readable and
// avoids quoting (no commas inside cells).

// WriteIntervalCSV writes m in the interval CSV format.
func WriteIntervalCSV(w io.Writer, m *imatrix.IMatrix) error {
	cw := csv.NewWriter(w)
	row := make([]string, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			iv := m.At(i, j)
			if iv.IsScalar() {
				row[j] = formatFloat(iv.Lo)
			} else {
				row[j] = formatFloat(iv.Lo) + ".." + formatFloat(iv.Hi)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadIntervalCSV parses the interval CSV format into an interval matrix.
func ReadIntervalCSV(r io.Reader) (*imatrix.IMatrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 || len(records[0]) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	m := imatrix.New(len(records), len(records[0]))
	for i, rec := range records {
		if len(rec) != m.Cols() {
			return nil, fmt.Errorf("dataset: row %d has %d cells, want %d", i, len(rec), m.Cols())
		}
		for j, cell := range rec {
			lo, hi, err := parseCell(cell)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", i, j, err)
			}
			m.Lo.Set(i, j, lo)
			m.Hi.Set(i, j, hi)
		}
	}
	if !m.IsWellFormed() {
		return nil, fmt.Errorf("dataset: CSV contains misordered intervals (lo > hi)")
	}
	return m, nil
}

func parseCell(cell string) (lo, hi float64, err error) {
	cell = strings.TrimSpace(cell)
	if idx := strings.Index(cell, ".."); idx >= 0 {
		lo, err = parseFinite(cell[:idx])
		if err != nil {
			return 0, 0, fmt.Errorf("bad lower endpoint %q", cell[:idx])
		}
		hi, err = parseFinite(cell[idx+2:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad upper endpoint %q", cell[idx+2:])
		}
		return lo, hi, nil
	}
	v, err := parseFinite(cell)
	if err != nil {
		return 0, 0, fmt.Errorf("bad scalar %q", cell)
	}
	return v, v, nil
}

// parseFinite parses a float and rejects NaN and infinities: non-finite
// endpoints violate the precondition of every decomposition downstream
// (core.ValidateInput, interval.IsValid), so the parsers refuse them at
// the boundary.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
