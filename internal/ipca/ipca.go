// Package ipca implements the classical interval-valued PCA family the
// paper discusses as related work (Section 2.3, refs [27]-[30]): the
// Centers method (PCA of the midpoint matrix with interval scores
// obtained by projecting the data boxes) and the Vertices method
// (PCA of the vertex-expanded data, approximated here by its standard
// moment-matching formulation to avoid the 2^m vertex blow-up).
//
// These serve as additional baselines: unlike ISVD they produce only a
// row-space embedding (principal axes and interval scores), not a full
// U·Σ·Vᵀ factorization, which is exactly the limitation the paper's
// introduction motivates ISVD with.
//
//ivmf:deterministic
package ipca

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/matrix"
)

// Result of an interval PCA: principal axes (columns), their variances
// (descending), and interval-valued scores of each input row.
type Result struct {
	// Axes is m×k, one principal axis per column (unit length).
	Axes *matrix.Dense
	// Variances holds the k leading eigenvalues of the covariance used.
	Variances []float64
	// Scores is n×k: the interval projection of every row box onto every
	// axis.
	Scores *imatrix.IMatrix
	// CenterMeans is the column mean vector that was subtracted.
	CenterMeans []float64
}

// ErrBadRank is returned for non-positive or too-large ranks.
var ErrBadRank = errors.New("ipca: rank out of range")

// Centers runs the Centers interval PCA: the principal axes are the
// eigenvectors of the covariance of the interval midpoints, and each
// data box projects to the exact interval of dot products between the
// box and the axis. The eigensolver is auto-routed: the truncated rank-r
// subspace solver when rank is well below the column count, the full
// solver otherwise (CentersWith forces a choice).
func Centers(m *imatrix.IMatrix, rank int) (*Result, error) {
	return CentersWith(m, rank, eig.SolverAuto)
}

// CentersWith is Centers with an explicit eigensolver choice.
func CentersWith(m *imatrix.IMatrix, rank int, solver eig.Solver) (*Result, error) {
	if rank <= 0 || rank > m.Cols() {
		return nil, fmt.Errorf("%w: %d with %d columns", ErrBadRank, rank, m.Cols())
	}
	mid := m.Mid()
	means := columnMeans(mid)
	cov := covariance(mid, means)
	vals, axes, err := topEig(cov, rank, solver)
	if err != nil {
		return nil, fmt.Errorf("ipca: Centers: %w", err)
	}
	res := &Result{
		Axes:        axes,
		Variances:   clampNonNegative(vals),
		CenterMeans: means,
	}
	res.Scores = projectBoxes(m, axes, means)
	return res, nil
}

// topEig returns the rank leading eigenpairs of the (symmetric PSD)
// covariance matrix under the routed solver (eig.SymEigWith): covariance
// spectra decay, so the truncated path converges in a handful of sweeps
// at O(m²·r) instead of O(m³), falling back to the full solver on flat
// spectra.
func topEig(cov *matrix.Dense, rank int, solver eig.Solver) ([]float64, *matrix.Dense, error) {
	return eig.SymEigWith(cov, rank, solver)
}

// Vertices runs the moment-matching approximation of the Vertices
// interval PCA: the covariance of the full vertex set of the data boxes
// decomposes as cov(midpoints) + E[diag(radius²)/3] (each coordinate of
// a box contributes an independent uniform spread), so the axes account
// for the interval widths, not just the centers.
func Vertices(m *imatrix.IMatrix, rank int) (*Result, error) {
	return VerticesWith(m, rank, eig.SolverAuto)
}

// VerticesWith is Vertices with an explicit eigensolver choice.
func VerticesWith(m *imatrix.IMatrix, rank int, solver eig.Solver) (*Result, error) {
	if rank <= 0 || rank > m.Cols() {
		return nil, fmt.Errorf("%w: %d with %d columns", ErrBadRank, rank, m.Cols())
	}
	mid := m.Mid()
	means := columnMeans(mid)
	cov := covariance(mid, means)
	// Add the per-column mean squared radius / 3 to the diagonal.
	n := float64(m.Rows())
	for j := 0; j < m.Cols(); j++ {
		var s float64
		for i := 0; i < m.Rows(); i++ {
			r := (m.Hi.At(i, j) - m.Lo.At(i, j)) / 2
			s += r * r
		}
		cov.Set(j, j, cov.At(j, j)+s/(3*n))
	}
	vals, axes, err := topEig(cov, rank, solver)
	if err != nil {
		return nil, fmt.Errorf("ipca: Vertices: %w", err)
	}
	res := &Result{
		Axes:        axes,
		Variances:   clampNonNegative(vals),
		CenterMeans: means,
	}
	res.Scores = projectBoxes(m, axes, means)
	return res, nil
}

// ReconstructMid maps the interval scores back through the axes to an
// approximate reconstruction of the input (midpoints of the score
// intervals; the axes are orthonormal so the pseudo-inverse is the
// transpose).
func (r *Result) ReconstructMid() *matrix.Dense {
	scoreMid := r.Scores.Mid()
	recon := matrix.MulT(scoreMid, r.Axes) // scores·axesᵀ
	for i := 0; i < recon.Rows; i++ {
		row := recon.RowView(i)
		for j := range row {
			row[j] += r.CenterMeans[j]
		}
	}
	return recon
}

// projectBoxes computes the exact interval of (x - mean)·axis over all
// member points x of each row box: per coordinate, the negative or
// positive endpoint is selected by the sign of the axis loading.
func projectBoxes(m *imatrix.IMatrix, axes *matrix.Dense, means []float64) *imatrix.IMatrix {
	n, k := m.Rows(), axes.Cols
	scores := imatrix.New(n, k)
	for i := 0; i < n; i++ {
		lo := m.Lo.RowView(i)
		hi := m.Hi.RowView(i)
		for c := 0; c < k; c++ {
			var sLo, sHi float64
			for j := 0; j < m.Cols(); j++ {
				a := axes.At(j, c)
				l := lo[j] - means[j]
				h := hi[j] - means[j]
				if a >= 0 {
					sLo += a * l
					sHi += a * h
				} else {
					sLo += a * h
					sHi += a * l
				}
			}
			scores.Lo.Set(i, c, sLo)
			scores.Hi.Set(i, c, sHi)
		}
	}
	return scores
}

func columnMeans(m *matrix.Dense) []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// covariance returns the (population) covariance matrix of the rows.
func covariance(m *matrix.Dense, means []float64) *matrix.Dense {
	centered := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	cov := matrix.TMul(centered, centered)
	return matrix.ScaleInto(cov, 1/float64(m.Rows), cov)
}

func clampNonNegative(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = math.Max(v, 0)
	}
	return out
}
