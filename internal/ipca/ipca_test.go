package ipca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eig"
	"repro/internal/imatrix"
	"repro/internal/interval"
	"repro/internal/matrix"
)

// elongatedCloud builds interval boxes around points stretched along a
// known direction.
func elongatedCloud(rng *rand.Rand, n int, halfSpan float64) *imatrix.IMatrix {
	m := imatrix.New(n, 2)
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * 5 // dominant direction (1, 1)/√2
		u := rng.NormFloat64() * 0.3
		x := (t + u) / math.Sqrt2
		y := (t - u) / math.Sqrt2
		m.Set(i, 0, interval.New(x-halfSpan, x+halfSpan))
		m.Set(i, 1, interval.New(y-halfSpan, y+halfSpan))
	}
	return m
}

func TestCentersFindsDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := elongatedCloud(rng, 200, 0.2)
	res, err := Centers(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First axis ≈ (1,1)/√2.
	a0 := res.Axes.Col(0)
	cos := math.Abs(a0[0]+a0[1]) / math.Sqrt2
	if cos < 0.99 {
		t.Fatalf("first axis %v not along (1,1): |cos| = %.4f", a0, cos)
	}
	if res.Variances[0] <= res.Variances[1] {
		t.Fatal("variances not descending")
	}
}

func TestScoresContainMemberProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := elongatedCloud(rng, 50, 0.5)
	res, err := Centers(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Any member point's centered projection must lie inside the score
	// interval of its row.
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(m.Rows())
		x := make([]float64, 2)
		for j := 0; j < 2; j++ {
			iv := m.At(i, j)
			x[j] = iv.Lo + rng.Float64()*iv.Span()
		}
		for c := 0; c < 2; c++ {
			var p float64
			for j := 0; j < 2; j++ {
				p += (x[j] - res.CenterMeans[j]) * res.Axes.At(j, c)
			}
			sc := res.Scores.At(i, c)
			if p < sc.Lo-1e-9 || p > sc.Hi+1e-9 {
				t.Fatalf("projection %g outside score %v", p, sc)
			}
		}
	}
}

func TestScalarDegenerateMatchesPCA(t *testing.T) {
	// Scalar input: Centers and Vertices coincide and scores are scalar.
	rng := rand.New(rand.NewSource(3))
	s := matrix.New(40, 5)
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
	}
	m := imatrix.FromScalar(s)
	c, err := Centers(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Vertices(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scores.MaxSpan() > 1e-12 {
		t.Fatal("scalar input gave interval scores")
	}
	for i := range c.Variances {
		if math.Abs(c.Variances[i]-v.Variances[i]) > 1e-9 {
			t.Fatalf("Centers and Vertices disagree on scalar input: %v vs %v", c.Variances, v.Variances)
		}
	}
}

func TestVerticesAccountsForSpread(t *testing.T) {
	// Two columns with equal midpoint variance, but column 1 has wide
	// intervals: Vertices must allocate it more variance than Centers.
	rng := rand.New(rand.NewSource(4))
	m := imatrix.New(100, 2)
	for i := 0; i < 100; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		m.Set(i, 0, interval.Scalar(a))
		m.Set(i, 1, interval.New(b-2, b+2))
	}
	c, err := Centers(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Vertices(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Variances[0] <= c.Variances[0] {
		t.Fatalf("Vertices top variance %.3f not above Centers %.3f", v.Variances[0], c.Variances[0])
	}
	// The wide column should dominate the first Vertices axis.
	if math.Abs(v.Axes.At(1, 0)) < math.Abs(v.Axes.At(0, 0)) {
		t.Fatalf("Vertices first axis ignores the wide column: %v", v.Axes.Col(0))
	}
}

func TestReconstructMid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := elongatedCloud(rng, 60, 0.1)
	res, err := Centers(m, 2) // full rank → near-exact reconstruction
	if err != nil {
		t.Fatal(err)
	}
	recon := res.ReconstructMid()
	mid := m.Mid()
	rel := matrix.Sub(mid, recon).Frobenius() / mid.Frobenius()
	if rel > 1e-9 {
		t.Fatalf("full-rank reconstruction error %g", rel)
	}
}

func TestBadRank(t *testing.T) {
	m := imatrix.New(4, 3)
	if _, err := Centers(m, 0); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Vertices(m, 4); err == nil {
		t.Fatal("rank > cols accepted")
	}
}

// Property: axes are orthonormal and variances descending for both
// methods on random interval data.
func TestPropAxesOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, mcols := 5+rng.Intn(20), 2+rng.Intn(4)
		m := imatrix.New(n, mcols)
		for i := 0; i < n; i++ {
			for j := 0; j < mcols; j++ {
				a := rng.NormFloat64()
				m.Set(i, j, interval.New(a, a+rng.Float64()))
			}
		}
		for _, method := range []func(*imatrix.IMatrix, int) (*Result, error){Centers, Vertices} {
			res, err := method(m, mcols)
			if err != nil {
				return false
			}
			gram := matrix.TMul(res.Axes, res.Axes)
			if !matrix.Equal(gram, matrix.Identity(mcols), 1e-8) {
				return false
			}
			for i := 1; i < len(res.Variances); i++ {
				if res.Variances[i] > res.Variances[i-1]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCentersWithSolverAgreement pins the solver routing of the PCA
// paths: forced truncated and forced full runs agree on variances at 1e-9
// relative and on axes up to sign, on data with a low-rank covariance.
func TestCentersWithSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// 200 rows in 80 columns concentrated on 5 latent directions, so the
	// covariance spectrum decays sharply past rank 5.
	lat := matrix.New(200, 5)
	load := matrix.New(80, 5)
	for i := range lat.Data {
		lat.Data[i] = rng.NormFloat64()
	}
	for i := range load.Data {
		load.Data[i] = rng.NormFloat64()
	}
	base := matrix.MulT(lat, load)
	m := imatrix.New(200, 80)
	for i := 0; i < 200; i++ {
		for j := 0; j < 80; j++ {
			v := base.At(i, j)
			m.Set(i, j, interval.New(v, v+0.01))
		}
	}
	for name, with := range map[string]func(*imatrix.IMatrix, int, eig.Solver) (*Result, error){
		"Centers": CentersWith, "Vertices": VerticesWith,
	} {
		full, err := with(m, 4, eig.SolverFull)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		trunc, err := with(m, 4, eig.SolverTruncated)
		if err != nil {
			t.Fatalf("%s truncated: %v", name, err)
		}
		for i := range full.Variances {
			if math.Abs(full.Variances[i]-trunc.Variances[i]) > 1e-9*full.Variances[0] {
				t.Errorf("%s: variance %d full %.15g vs truncated %.15g", name, i, full.Variances[i], trunc.Variances[i])
			}
		}
		for j := 0; j < 4; j++ {
			var dot float64
			for i := 0; i < 80; i++ {
				dot += full.Axes.At(i, j) * trunc.Axes.At(i, j)
			}
			if math.Abs(math.Abs(dot)-1) > 1e-7 {
				t.Errorf("%s: axis %d |cos| = %.12g", name, j, math.Abs(dot))
			}
		}
		// Scores must agree too (they are linear in the axes).
		for _, c := range [][2]int{{0, 0}, {150, 3}} {
			fi, ti := full.Scores.At(c[0], c[1]), trunc.Scores.At(c[0], c[1])
			if math.Abs(fi.Lo-ti.Lo) > 1e-6 || math.Abs(fi.Hi-ti.Hi) > 1e-6 {
				t.Errorf("%s: score (%d,%d) full %v vs truncated %v", name, c[0], c[1], fi, ti)
			}
		}
	}
}
