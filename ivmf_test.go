package ivmf_test

import (
	"math/rand"
	"testing"

	ivmf "repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := ivmf.NewIntervalMatrix(12, 9)
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			v := rng.Float64() + 0.1
			m.Set(i, j, ivmf.Interval{Lo: v, Hi: v + 0.3*rng.Float64()})
		}
	}
	for _, method := range ivmf.Methods() {
		for _, target := range ivmf.Targets() {
			d, err := ivmf.Decompose(m, method, ivmf.Options{Rank: 4, Target: target})
			if err != nil {
				t.Fatalf("%v-%v: %v", method, target, err)
			}
			acc := d.Evaluate(m)
			if acc.HMean <= 0 || acc.HMean > 1 {
				t.Errorf("%v-%v: H-mean %g out of range", method, target, acc.HMean)
			}
		}
	}
}

func TestPublicAPIScalarLift(t *testing.T) {
	s := ivmf.NewMatrix(4, 3)
	for i := range s.Data {
		s.Data[i] = float64(i + 1)
	}
	m := ivmf.FromScalarMatrix(s)
	d, err := ivmf.Decompose(m, ivmf.ISVD4, ivmf.Options{Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if acc := d.Evaluate(m); acc.HMean < 1-1e-9 {
		t.Fatalf("scalar full-rank H-mean = %v", acc.HMean)
	}
}

func TestPublicAPIPMF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := ivmf.NewMatrix(15, 10)
	for i := range m.Data {
		if rng.Float64() < 0.7 {
			m.Data[i] = float64(1 + rng.Intn(5))
		}
	}
	model, err := ivmf.TrainPMF(m, ivmf.PMFConfig{Rank: 3, Epochs: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := model.Predict(0, 0); p != p {
		t.Fatal("NaN prediction")
	}
	im := ivmf.FromScalarMatrix(m)
	am, err := ivmf.TrainAIPMF(im, ivmf.PMFConfig{Rank: 3, Epochs: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := am.PredictInterval(0, 0); lo > hi {
		t.Fatal("misordered interval prediction")
	}
}

func TestPublicAPINMF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ivmf.NewMatrix(8, 6)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	model, err := ivmf.TrainNMF(m, ivmf.NMFConfig{Rank: 3, Iterations: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if model.Reconstruct().Rows != 8 {
		t.Fatal("bad reconstruction shape")
	}
	im, err := ivmf.TrainINMF(ivmf.FromScalarMatrix(m), ivmf.NMFConfig{Rank: 3, Iterations: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Reconstruct().IsWellFormed() {
		t.Fatal("I-NMF reconstruction misordered")
	}
}

func TestPublicAPILP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := ivmf.NewIntervalMatrix(8, 5)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			v := rng.Float64() + 0.5
			m.Set(i, j, ivmf.Interval{Lo: v, Hi: v + 1e-4})
		}
	}
	d, err := ivmf.DecomposeLP(m, ivmf.LPOptions{Rank: 3, Target: ivmf.TargetB})
	if err != nil {
		t.Fatal(err)
	}
	if acc := d.Evaluate(m); acc.HMean < 0.8 {
		t.Fatalf("tiny-interval LP H-mean = %v", acc.HMean)
	}
}

func TestPublicAccuracyHelper(t *testing.T) {
	m := ivmf.NewIntervalMatrix(2, 2)
	m.Set(0, 0, ivmf.Interval{Lo: 1, Hi: 2})
	if acc := ivmf.Accuracy(m, m.Clone()); acc.HMean != 1 {
		t.Fatalf("self accuracy = %v", acc.HMean)
	}
}

func TestPublicAPIPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := ivmf.NewIntervalMatrix(20, 4)
	for i := 0; i < 20; i++ {
		for j := 0; j < 4; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, ivmf.Interval{Lo: v - 0.1, Hi: v + 0.1})
		}
	}
	c, err := ivmf.PCACenters(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scores.Rows() != 20 || c.Scores.Cols() != 2 {
		t.Fatal("PCA score shape wrong")
	}
	v, err := ivmf.PCAVertices(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Variances[0] < c.Variances[0] {
		t.Fatal("Vertices variance below Centers")
	}
}

func TestPublicAPIRecommender(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := ivmf.NewIntervalMatrix(15, 6)
	for i := 0; i < 15; i++ {
		for j := 0; j < 6; j++ {
			if rng.Float64() < 0.6 {
				v := float64(1 + rng.Intn(5))
				m.Set(i, j, ivmf.Interval{Lo: v, Hi: v})
			}
		}
	}
	rec, err := ivmf.NewRecommender(m, ivmf.ISVD4, ivmf.Options{Rank: 3, Target: ivmf.TargetB}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	top, err := rec.TopN(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("TopN = %v", top)
	}
	cov, err := rec.CoverageRate([]ivmf.RecommendHoldout{{Row: 0, Col: 0, Value: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage %v", cov)
	}
}

func TestPublicAPIValidateInput(t *testing.T) {
	m := ivmf.NewIntervalMatrix(2, 2)
	if err := ivmf.ValidateInput(m); err != nil {
		t.Fatal(err)
	}
	m.Lo.Set(0, 0, 2)
	m.Hi.Set(0, 0, 1)
	if err := ivmf.ValidateInput(m); err == nil {
		t.Fatal("misordered accepted")
	}
}

func TestPublicAPIParsers(t *testing.T) {
	if m, err := ivmf.ParseMethod("isvd4"); err != nil || m != ivmf.ISVD4 {
		t.Errorf("ParseMethod(isvd4) = %v, %v", m, err)
	}
	if tg, err := ivmf.ParseTarget("B"); err != nil || tg != ivmf.TargetB {
		t.Errorf("ParseTarget(B) = %v, %v", tg, err)
	}
	if r, err := ivmf.ParseRefresh("always"); err != nil || r != ivmf.RefreshAlways {
		t.Errorf("ParseRefresh(always) = %v, %v", r, err)
	}
	if _, err := ivmf.ParseMethod("ISVD9"); err == nil {
		t.Error("ParseMethod accepted ISVD9")
	}
	if _, err := ivmf.ParseTarget("z"); err == nil {
		t.Error("ParseTarget accepted z")
	}
	if _, err := ivmf.ParseRefresh("maybe"); err == nil {
		t.Error("ParseRefresh accepted maybe")
	}
}
