package ivmf_test

// Smoke tests for the runnable examples: each examples/* main must
// build and exit 0 with non-empty output. Examples are the de-facto
// public-API tutorials, so a signature change that breaks one should
// fail the suite, not a user.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesBuildAndRun(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	bin := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			out, err := exec.Command(exe).CombinedOutput()
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
