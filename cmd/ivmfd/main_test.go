package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestServeAndDrain boots the daemon on a loopback port, runs one
// decompose job through the HTTP API, then cancels the context and
// checks the drain path exits cleanly.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", service.Config{}, time.Minute, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	c := &service.Client{Base: "http://" + addr}
	rctx, rcancel := context.WithTimeout(context.Background(), time.Minute)
	defer rcancel()
	if err := c.Health(rctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	info, err := c.Submit(rctx, service.Request{
		Tenant: "t", Kind: "decompose", Rank: 2, Target: "b", Min: 1, Max: 5,
		COO: "4,3\n0,0,1\n1,1,2..3\n2,2,4\n3,0,5\n0,1,2\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.WaitJob(rctx, info.ID, time.Millisecond); err != nil || info.State != service.JobDone {
		t.Fatalf("job ended %+v (err %v)", info, err)
	}
	resp, err := c.Predict(rctx, "t", [][2]int{{0, 0}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 1 || len(resp.Predictions) != 2 {
		t.Fatalf("predict = %+v", resp)
	}
	metrics, err := c.Metrics(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `ivmfd_jobs_admitted_total{kind="decompose"} 1`) {
		t.Error("metrics missing the admission counter")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("server did not shut down")
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), "256.256.256.256:99999", service.Config{}, time.Second, nil)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}
