// Command ivmfd is the batched interval-decomposition server: a
// long-running daemon that admits decompose/update jobs into per-tenant
// queues (payloads held as O(NNZ) sparse matrices), schedules them in
// cost-budgeted batches across the shared worker pool, and serves
// predictions from atomically swapped factor snapshots — the HTTP face
// of internal/service.
//
// Usage:
//
//	ivmfd -addr :8080 -budget 4194304 -workers 0 -maxbody 16777216 -maxqueue 64
//
// Endpoints (see internal/service/server.go and README "Serving"):
//
//	POST /v1/jobs       GET /v1/jobs/{id}
//	POST /v1/predict    GET /v1/predict    GET /v1/topn
//	GET  /metrics       GET /healthz
//
// On SIGTERM or SIGINT the server drains: admission stops (503), every
// already-admitted job runs to completion and publishes its snapshot,
// then the HTTP listener shuts down. No admitted work is ever dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 0, "scheduler cost budget per round in NNZ×rank units (0 = default)")
	workers := flag.Int("workers", 0, "default per-job worker bound (0 = shared pool default)")
	maxBody := flag.Int64("maxbody", 0, "max request body bytes (0 = default)")
	maxQueue := flag.Int("maxqueue", 0, "max pending jobs per tenant (0 = default)")
	drainTimeout := flag.Duration("draintimeout", 5*time.Minute, "max time to finish admitted jobs on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := service.Config{
		Budget:       *budget,
		Workers:      *workers,
		MaxBodyBytes: *maxBody,
		MaxQueue:     *maxQueue,
	}
	if err := run(ctx, *addr, cfg, *drainTimeout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "ivmfd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and shuts down. When
// ready is non-nil the bound listen address is sent on it once the
// server is accepting (tests bind ":0").
func run(ctx context.Context, addr string, cfg service.Config, drainTimeout time.Duration, ready chan<- string) error {
	s := service.New(cfg)
	s.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (the handler answers 503), let the
	// executor finish every admitted job, then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return srv.Shutdown(dctx)
}
