// Command ivmfd is the batched interval-decomposition server: a
// long-running daemon that admits decompose/update jobs into per-tenant
// queues (payloads held as O(NNZ) sparse matrices), schedules them in
// cost-budgeted batches across the shared worker pool, and serves
// predictions from atomically swapped factor snapshots — the HTTP face
// of internal/service.
//
// Usage:
//
//	ivmfd -addr :8080 -budget 4194304 -workers 0 -maxbody 16777216 -maxqueue 64 -data-dir /var/lib/ivmfd
//
// Endpoints (see internal/service/server.go and README "Serving"):
//
//	POST /v1/jobs       GET /v1/jobs/{id}
//	POST /v1/predict    GET /v1/predict    GET /v1/topn
//	GET  /metrics       GET /healthz       GET /readyz
//
// With -data-dir the server is crash-safe: every job's result is made
// durable (snapshot or fsynced write-ahead record, see internal/store)
// before the job is acknowledged, and a restart recovers all tenants to
// exactly the acknowledged state — kill -9 loses at most unacknowledged
// work.
//
// Update jobs may slide a window: delta payloads carry tombstone
// records ("row,col,x") expiring cells and an optional forgetting
// factor λ, and the engine's numerical-health guardrails escalate
// (warm refresh → windowed redecompose) before a degraded model can
// serve. Per-tenant model health is exported as the
// ivmfd_model_health_* gauge families on /metrics and in the /readyz
// detail (see README "Sliding windows & model health").
//
// On SIGTERM or SIGINT the server drains: admission stops (503), every
// already-admitted job runs to completion, publishes its snapshot, and
// reaches disk, then the HTTP listener shuts down and the store closes.
// No admitted work is ever dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 0, "scheduler cost budget per round in NNZ×rank units (0 = default)")
	workers := flag.Int("workers", 0, "default per-job worker bound (0 = shared pool default)")
	maxBody := flag.Int64("maxbody", 0, "max request body bytes (0 = default)")
	maxQueue := flag.Int("maxqueue", 0, "max pending jobs per tenant (0 = default)")
	dataDir := flag.String("data-dir", "", "durable model store directory (empty = in-memory only)")
	drainTimeout := flag.Duration("draintimeout", 5*time.Minute, "max time to finish admitted jobs on shutdown")
	reqTimeout := flag.Duration("reqtimeout", 0, "per-request deadline on read endpoints (0 = default, negative = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := service.Config{
		Budget:         *budget,
		Workers:        *workers,
		MaxBodyBytes:   *maxBody,
		MaxQueue:       *maxQueue,
		DataDir:        *dataDir,
		RequestTimeout: *reqTimeout,
	}
	if err := run(ctx, *addr, cfg, *drainTimeout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "ivmfd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and shuts down. When
// ready is non-nil the bound listen address is sent on it once the
// server is accepting (tests bind ":0").
func run(ctx context.Context, addr string, cfg service.Config, drainTimeout time.Duration, ready chan<- string) error {
	// Open recovers every persisted tenant from cfg.DataDir before the
	// listener accepts; without a data dir it is exactly New.
	s, err := service.Open(cfg)
	if err != nil {
		return err
	}
	s.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Server-side timeouts bound what a slow or hostile client can hold
	// open: headers must arrive promptly, whole requests and responses
	// are bounded generously (job payloads can be large but not
	// unbounded), and idle keep-alive connections are reaped.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (the handler answers 503), let the
	// executor finish every admitted job — each one durable before it
	// was acknowledged — then close the listener, and only then the
	// store: in-flight predictions may serve zero-copy from mappings
	// the store owns.
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	return s.Close()
}
