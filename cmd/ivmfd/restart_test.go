package main

import (
	"context"
	"math"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recommend"
	"repro/internal/service"
	"repro/internal/sparse"
)

// Restart equivalence under SIGKILL: boot the real daemon with a data
// directory, stream a base decomposition and updates at it, kill -9 the
// process mid-stream, reboot it on the same directory, and pin every
// served prediction bitwise against an uninterrupted offline chain of
// the acknowledged jobs. This is the crash-safety contract end to end —
// through the real binary, the real filesystem, and a real SIGKILL —
// with no cooperation from the dying process.

const (
	rstRows, rstCols = 8, 6
	rstRank          = 3
	rstMin, rstMax   = 1.0, 5.0
)

// rstBase is the deterministic base matrix of the restart test.
func rstBase(t *testing.T) *sparse.ICSR {
	t.Helper()
	var ts []sparse.ITriplet
	for i := 0; i < rstRows; i++ {
		for j := 0; j < rstCols; j++ {
			if (i*7+j*11)%3 == 0 {
				mid := 1.0 + float64((i*5+j*3)%9)*0.4
				ts = append(ts, sparse.ITriplet{Row: i, Col: j, Lo: mid - 0.2, Hi: mid + 0.2})
			}
		}
	}
	m, err := sparse.FromICOO(rstRows, rstCols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rstPatch is the k-th deterministic update patch (distinct cells, so
// the service's last-wins merge is the identity).
func rstPatch(k int) []sparse.ITriplet {
	return []sparse.ITriplet{
		{Row: k % rstRows, Col: (2 * k) % rstCols, Lo: 1.5 + 0.3*float64(k), Hi: 2.1 + 0.3*float64(k)},
		{Row: (k + 3) % rstRows, Col: (k + 1) % rstCols, Lo: 2.5, Hi: 3.0},
	}
}

func rstCOO(t *testing.T, m *sparse.ICSR) string {
	t.Helper()
	var sb strings.Builder
	if err := dataset.WriteIntervalCOO(&sb, m); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func rstDelta(t *testing.T, ts []sparse.ITriplet) string {
	t.Helper()
	var sb strings.Builder
	if err := dataset.WriteDeltaCOO(&sb, rstRows, rstCols, ts); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// startDaemon launches the built binary and waits for /healthz.
func startDaemon(t *testing.T, ctx context.Context, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &service.Client{Base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := c.Health(ctx); err == nil {
			return cmd
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("daemon did not become healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRestartAfterSIGKILLServesAckedChainBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ivmfd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	// Reserve a loopback port for both daemon lives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir := filepath.Join(dir, "data")
	base := rstBase(t)

	// First life: decompose, two acknowledged updates, then a third
	// submitted but not awaited — the kill lands mid-stream.
	daemon := startDaemon(t, ctx, bin, addr, dataDir)
	c := &service.Client{Base: "http://" + addr}
	info, err := c.Submit(ctx, service.Request{
		Tenant: "t", Kind: "decompose", Method: "ISVD4", Rank: rstRank,
		Target: "b", Min: rstMin, Max: rstMax, COO: rstCOO(t, base),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.WaitJob(ctx, info.ID, time.Millisecond); err != nil || info.State != service.JobDone {
		t.Fatalf("decompose ended %+v (err %v)", info, err)
	}
	for k := 1; k <= 2; k++ {
		u, err := c.Submit(ctx, service.Request{
			Tenant: "t", Kind: "update", Refresh: "never", Delta: rstDelta(t, rstPatch(k)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if u, err = c.WaitJob(ctx, u.ID, time.Millisecond); err != nil || u.State != service.JobDone {
			t.Fatalf("update %d ended %+v (err %v)", k, u, err)
		}
	}
	if _, err := c.Submit(ctx, service.Request{
		Tenant: "t", Kind: "update", Refresh: "never", Delta: rstDelta(t, rstPatch(3)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	_ = daemon.Wait()

	// Second life on the same directory.
	daemon = startDaemon(t, ctx, bin, addr, dataDir)
	defer func() {
		_ = daemon.Process.Kill()
		_ = daemon.Wait()
	}()
	cells := make([][2]int, 0, rstRows*rstCols)
	for i := 0; i < rstRows; i++ {
		for j := 0; j < rstCols; j++ {
			cells = append(cells, [2]int{i, j})
		}
	}
	resp, err := c.Predict(ctx, "t", cells)
	if err != nil {
		t.Fatal(err)
	}
	// Acknowledged: base (version 1) and two updates (2, 3). The third
	// update was in flight at the kill — it either never became durable
	// (version 3) or was completed before the process died (version 4);
	// anything else means lost or phantom acknowledged work.
	if resp.Version != 3 && resp.Version != 4 {
		t.Fatalf("recovered version %d, want 3 or 4", resp.Version)
	}

	// Uninterrupted offline chain of exactly the served versions,
	// through the same core entry points the daemon uses.
	d, err := core.DecomposeSparse(base, core.ISVD4, core.Options{
		Rank: rstRank, Target: core.TargetB, Updatable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= int(resp.Version)-1; k++ {
		if d, err = d.Update(core.Delta{Patch: rstPatch(k)}, core.Options{Refresh: core.RefreshNever}); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := recommend.FromSparseDecomposition(d, rstMin, rstMax)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Predictions {
		want, err := pred.PredictInterval(p.Row, p.Col)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(p.Lo) != math.Float64bits(want.Lo) ||
			math.Float64bits(p.Hi) != math.Float64bits(want.Hi) ||
			math.Float64bits(p.Mid) != math.Float64bits(want.Mid()) {
			t.Fatalf("cell (%d,%d): served [%v,%v] mid %v, offline chain [%v,%v] mid %v",
				p.Row, p.Col, p.Lo, p.Hi, p.Mid, want.Lo, want.Hi, want.Mid())
		}
	}

	// The reboot should have recovered exactly one tenant.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `ivmfd_store_recovered_tenants_total{outcome="ok"} 1`) {
		t.Error("metrics missing the recovery counter")
	}
}
