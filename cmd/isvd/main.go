// Command isvd decomposes an interval-valued CSV matrix and reports the
// factors and reconstruction accuracy.
//
// Input format: a CSV where each cell is either a scalar ("1.5") or an
// interval ("1.0..2.5").
//
// Usage:
//
//	isvd -in data.csv -rank 10 -method 4 -target b [-out recon.csv]
//
// Methods 0-4 select ISVD0-ISVD4; targets a/b/c select the output
// semantics of Section 3.4 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/parallel"
)

func main() {
	in := flag.String("in", "", "input interval CSV file (required)")
	out := flag.String("out", "", "optional output CSV for the reconstruction")
	rank := flag.Int("rank", 0, "target rank (0 = full)")
	method := flag.Int("method", 4, "ISVD variant 0-4")
	target := flag.String("target", "b", "decomposition target: a, b, or c")
	solver := flag.String("solver", "auto", "eigen/SVD backend: auto, full, or truncated (auto picks the truncated rank-r solver when -rank is small relative to the matrix)")
	workers := flag.Int("workers", 0, "worker-pool goroutines (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()

	parallel.SetWorkers(*workers)
	if err := run(*in, *out, *rank, *method, *target, *solver); err != nil {
		fmt.Fprintf(os.Stderr, "isvd: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, rank, method int, target, solver string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	if method < 0 || method > 4 {
		return fmt.Errorf("-method must be 0-4, got %d", method)
	}
	sv, err := eig.ParseSolver(solver)
	if err != nil {
		return err
	}
	var tgt core.Target
	switch target {
	case "a":
		tgt = core.TargetA
	case "b":
		tgt = core.TargetB
	case "c":
		tgt = core.TargetC
	default:
		return fmt.Errorf("-target must be a, b, or c, got %q", target)
	}

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := dataset.ReadIntervalCSV(f)
	if err != nil {
		return err
	}

	d, err := core.Decompose(m, core.Method(method), core.Options{Rank: rank, Target: tgt, Solver: sv})
	if err != nil {
		return err
	}
	acc := d.Evaluate(m)
	fmt.Printf("input: %dx%d interval matrix (max span %.4g)\n", m.Rows(), m.Cols(), m.MaxSpan())
	fmt.Printf("decomposition: %s target-%s rank %d\n", d.Method, d.Target, d.Rank)
	fmt.Printf("singular values (lo..hi):")
	for j := 0; j < d.Rank; j++ {
		fmt.Printf(" %.4g..%.4g", d.Sigma.Lo.At(j, j), d.Sigma.Hi.At(j, j))
	}
	fmt.Println()
	fmt.Printf("accuracy: Δ_lo=%.4f Δ_hi=%.4f Θ_lo=%.4f Θ_hi=%.4f H-mean=%.4f\n",
		acc.DeltaLo, acc.DeltaHi, acc.ThetaLo, acc.ThetaHi, acc.HMean)
	fmt.Printf("timings: preprocess=%v decompose=%v align=%v solve=%v construct=%v\n",
		d.Timings.Preprocess, d.Timings.Decompose, d.Timings.Align, d.Timings.Solve, d.Timings.Construct)

	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := dataset.WriteIntervalCSV(g, d.Reconstruct()); err != nil {
			return err
		}
		fmt.Printf("reconstruction written to %s\n", out)
	}
	return nil
}
