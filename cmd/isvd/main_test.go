package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sample = "1,2..3,0.5\n0.9..1.1,2,0.6\n2,4..4.2,1.2\n0.4,1,0.3\n"

func TestRunDecomposes(t *testing.T) {
	in := writeTemp(t, sample)
	out := filepath.Join(t.TempDir(), "recon.csv")
	if err := run(in, out, 2, 4, "b", "auto"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty reconstruction written")
	}
}

func TestRunAllMethodsTargets(t *testing.T) {
	in := writeTemp(t, sample)
	for m := 0; m <= 4; m++ {
		for _, tgt := range []string{"a", "b", "c"} {
			if err := run(in, "", 2, m, tgt, "auto"); err != nil {
				t.Fatalf("method %d target %s: %v", m, tgt, err)
			}
		}
	}
}

func TestRunSolverFlag(t *testing.T) {
	in := writeTemp(t, sample)
	// Both forced backends must decompose the sample; a bogus value is
	// rejected before any work happens.
	for _, sv := range []string{"full", "truncated"} {
		if err := run(in, "", 2, 4, "b", sv); err != nil {
			t.Fatalf("solver %s: %v", sv, err)
		}
	}
	if err := run(in, "", 2, 4, "b", "bogus"); err == nil {
		t.Error("bogus solver accepted")
	}
}

func TestRunValidation(t *testing.T) {
	in := writeTemp(t, sample)
	if err := run("", "", 2, 4, "b", "auto"); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(in, "", 2, 9, "b", "auto"); err == nil {
		t.Error("bad method accepted")
	}
	if err := run(in, "", 2, 4, "z", "auto"); err == nil {
		t.Error("bad target accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), "", 2, 4, "b", "auto"); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "1,abc\n")
	if err := run(bad, "", 2, 4, "b", "auto"); err == nil {
		t.Error("bad CSV accepted")
	}
}
