// Command ivmfload is the closed-loop load generator for ivmfd: N
// simulated tenants each decompose a generated ratings matrix, then
// replay a delta stream (the same StreamSplit batches cmd/datagen
// -batches writes) while closed-loop predict workers hammer the serving
// path. It reports per-run job accounting and predict latency quantiles
// as JSON, and checks the service SLO: no admitted job lost, p99
// predict latency within bound. BENCH_service.json in the repo root is
// this tool's committed output.
//
// Usage:
//
//	ivmfload -tenants 1,4,16 -scale 0.1 -rank 10 -batches 3 > BENCH_service.json
//	ivmfload -addr 127.0.0.1:8080 -tenants 4    # against a running ivmfd
//	ivmfload -chaos -tenants 4 -data-dir /tmp/chaos
//	ivmfload -window -chaos -tenants 4 -data-dir /tmp/win
//
// Without -addr each run boots its own in-process ivmfd on a loopback
// port, so the numbers include the full HTTP round trip.
//
// Submissions carry deterministic Idempotency-Keys and the client
// retries transient failures (429/503/connection errors, honoring
// Retry-After), so every run also exercises the exactly-once admission
// contract; retried and deduped submissions are reported separately.
//
// With -chaos (in-process server only) the run turns hostile while the
// healthy tenants keep working: one designated chaos tenant gets
// injected executor panics and store faults until it is quarantined, a
// hostile-payload worker throws malformed/poisonous envelopes at
// admission, a disconnect worker tears down connections mid-request,
// and (when durable) the whole server is drained and restarted mid-run.
// The run then asserts the isolation contract: no healthy job lost or
// failed, no hostile payload accepted, and every healthy tenant's
// served predictions bitwise-equal to the offline decompose+update
// chain of its acknowledged jobs.
//
// With -window the replay turns into a sliding window: each delta
// carries arriving cells plus tombstones expiring the oldest live cells
// (dataset.WindowSplit), every batch decays the spectrum by λ, and an
// injected arrive-and-expire cycle of a cell dwarfing the spectrum
// forces an ill-conditioned downdate mid-stream. Verified tenants are
// then checked at EVERY acknowledged version: served predictions must
// stay bitwise-equal to the offline windowed chain (which replays the
// same deltas under the same policies, including the guardrail
// redecompose), never carry a non-finite value, and the injected
// removal must visibly escalate rather than silently drift.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recommend"
	"repro/internal/service"
	"repro/internal/sparse"
)

type loadConfig struct {
	Addr     string  `json:"addr,omitempty"`
	Scale    float64 `json:"scale"`
	Rank     int     `json:"rank"`
	Batches  int     `json:"batches"`
	Hammers  int     `json:"hammersPerTenant"`
	Cells    int     `json:"cellsPerPredict"`
	Seed     int64   `json:"seed"`
	SLOP99Ms float64 `json:"sloP99Ms"`
	// DataDir makes the in-process server durable, measuring the
	// write-ahead durability tax under load (ignored with Addr).
	DataDir string `json:"dataDir,omitempty"`
	// Chaos enables fault injection (in-process server only).
	Chaos bool `json:"chaos,omitempty"`
	// Window replays a sliding window (tombstone expiries + λ decay)
	// with an injected ill-conditioned removal cycle.
	Window bool `json:"window,omitempty"`
}

type jobStats struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Lost      int `json:"lost"`
	// Retried counts client-side retry attempts (connection errors,
	// 429/503); Deduped counts submissions answered from the server's
	// idempotency ledger instead of admitting a duplicate.
	Retried int `json:"retried"`
	Deduped int `json:"deduped"`
}

type predictStats struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ThroughputRps float64 `json:"throughputRps"`
	P50Ms         float64 `json:"p50Ms"`
	P95Ms         float64 `json:"p95Ms"`
	P99Ms         float64 `json:"p99Ms"`
}

// chaosStats is the fault-injection accounting of a -chaos run. The
// isolation contract requires HostileAccepted and BitwiseMismatches to
// be zero; InjectedFailures and RejectedBusy are the faults landing
// where they were aimed (the chaos tenant).
type chaosStats struct {
	InjectedFailures int `json:"injectedFailures"`
	RejectedBusy     int `json:"rejectedBusy"`
	HostileSent      int `json:"hostileSent"`
	HostileAccepted  int `json:"hostileAccepted"`
	Disconnects      int `json:"disconnects"`
	Restarts         int `json:"restarts"`
	BitwiseChecked   int `json:"bitwiseChecked"`
	BitwiseMismatch  int `json:"bitwiseMismatch"`
	// WindowRedecomposes counts guardrail redecomposes observed in the
	// verified tenants' offline window chains (-window runs: the
	// injected ill-conditioned removal must land here, visibly).
	WindowRedecomposes int `json:"windowRedecomposes,omitempty"`
}

type runResult struct {
	Tenants     int          `json:"tenants"`
	WallSeconds float64      `json:"wallSeconds"`
	Jobs        jobStats     `json:"jobs"`
	Predict     predictStats `json:"predict"`
	Chaos       *chaosStats  `json:"chaos,omitempty"`
	SLOPass     bool         `json:"sloPass"`
}

type report struct {
	Tool    string      `json:"tool"`
	Config  loadConfig  `json:"config"`
	Runs    []runResult `json:"runs"`
	SLOPass bool        `json:"sloPass"`
}

func main() {
	addr := flag.String("addr", "", "target a running ivmfd (empty = in-process server per run)")
	tenants := flag.String("tenants", "1,4,16", "comma-separated tenant counts, one run each")
	scale := flag.Float64("scale", 0.1, "ratings dataset scale per tenant")
	rank := flag.Int("rank", 10, "decomposition rank")
	batches := flag.Int("batches", 3, "delta batches per tenant")
	hammers := flag.Int("hammers", 2, "closed-loop predict workers per tenant")
	cells := flag.Int("cells", 16, "cells per predict request")
	seed := flag.Int64("seed", 1, "RNG seed")
	sloP99 := flag.Float64("slop99ms", 250, "SLO: p99 predict latency bound in ms")
	dataDir := flag.String("data-dir", "", "durable store root for the in-process server (empty = in-memory)")
	chaos := flag.Bool("chaos", false, "inject faults (panics, hostile payloads, disconnects, restart) and assert isolation")
	window := flag.Bool("window", false, "replay a sliding window (tombstone expiries + λ decay) with an injected ill-conditioned removal")
	out := flag.String("out", "", "output path (empty = stdout)")
	flag.Parse()

	cfg := loadConfig{Addr: *addr, Scale: *scale, Rank: *rank, Batches: *batches,
		Hammers: *hammers, Cells: *cells, Seed: *seed, SLOP99Ms: *sloP99,
		DataDir: *dataDir, Chaos: *chaos, Window: *window}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmfload: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *tenants, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ivmfload: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, tenantList string, cfg loadConfig) error {
	counts, err := parseCounts(tenantList)
	if err != nil {
		return err
	}
	if cfg.Batches < 1 || cfg.Hammers < 0 || cfg.Cells < 1 || cfg.Rank < 1 {
		return fmt.Errorf("bad load shape: batches=%d hammers=%d cells=%d rank=%d",
			cfg.Batches, cfg.Hammers, cfg.Cells, cfg.Rank)
	}
	if cfg.Chaos && cfg.Addr != "" {
		return fmt.Errorf("-chaos needs the in-process server (drop -addr)")
	}
	rep := report{Tool: "cmd/ivmfload", Config: cfg, SLOPass: true}
	for _, n := range counts {
		res, err := runOne(n, cfg)
		if err != nil {
			return fmt.Errorf("%d tenants: %w", n, err)
		}
		rep.Runs = append(rep.Runs, res)
		if !res.SLOPass {
			rep.SLOPass = false
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.SLOPass {
		return fmt.Errorf("SLO violated")
	}
	return nil
}

func parseCounts(list string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad tenant count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("empty tenant list")
	}
	return counts, nil
}

// tenantOutcome is one simulated tenant's accounting.
type tenantOutcome struct {
	jobs      jobStats
	latencies []time.Duration // closed-loop predict latencies
	predErrs  int
	err       error

	// Chaos accounting.
	injectedFailures   int
	rejectedBusy       int
	bitwiseChecked     bool
	bitwiseMismatch    int
	windowRedecomposes int
}

// tenantOpts tailors driveTenant for a chaos run.
type tenantOpts struct {
	// chaotic tolerates injected job failures and busy rejections
	// instead of failing the run.
	chaotic bool
	// verify compares the final served state bitwise against the
	// offline decompose+update chain.
	verify bool
	// afterDecompose fires once the tenant's model is published (the
	// chaos harness arms its failpoints here, so the poison lands on
	// updates, not the initial decompose).
	afterDecompose func()
	// afterUpdate fires after each acknowledged update (the restart
	// trigger).
	afterUpdate func()
}

// runOne drives one load run at a given tenant count.
func runOne(tenants int, cfg loadConfig) (runResult, error) {
	base := cfg.Addr
	var inp *inprocServer
	if base == "" {
		dataDir := cfg.DataDir
		if dataDir != "" {
			// One store per run: tenant names repeat across runs, and a
			// shared store would replay run N-1's models into run N.
			dataDir = filepath.Join(dataDir, fmt.Sprintf("run-%d", tenants))
		}
		var err error
		inp, err = startInproc(dataDir)
		if err != nil {
			return runResult{}, err
		}
		base = inp.base()
		defer func() {
			if inp != nil {
				_ = inp.stop()
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var (
		ch       *chaosHarness
		chaosRes *chaosStats
	)
	opts := make([]tenantOpts, tenants)
	if cfg.Chaos {
		ch = newChaosHarness(inp, base)
		for t := range opts {
			opts[t] = ch.tenantOpts(t, tenants)
		}
		ch.start(ctx)
	}

	start := time.Now()
	outcomes := make([]tenantOutcome, tenants)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			outcomes[t] = driveTenant(ctx, base, fmt.Sprintf("tenant-%d", t), cfg, cfg.Seed+int64(t), opts[t])
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)
	if ch != nil {
		var err error
		chaosRes, err = ch.finish()
		if err != nil {
			return runResult{Tenants: tenants, Chaos: chaosRes}, err
		}
	}

	res := runResult{Tenants: tenants, WallSeconds: wall.Seconds(), Chaos: chaosRes}
	var all []time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			return res, o.err
		}
		res.Jobs.Submitted += o.jobs.Submitted
		res.Jobs.Done += o.jobs.Done
		res.Jobs.Failed += o.jobs.Failed
		res.Jobs.Lost += o.jobs.Lost
		res.Jobs.Retried += o.jobs.Retried
		res.Jobs.Deduped += o.jobs.Deduped
		res.Predict.Errors += o.predErrs
		all = append(all, o.latencies...)
		if chaosRes != nil {
			chaosRes.InjectedFailures += o.injectedFailures
			chaosRes.RejectedBusy += o.rejectedBusy
			if o.bitwiseChecked {
				chaosRes.BitwiseChecked++
			}
			chaosRes.BitwiseMismatch += o.bitwiseMismatch
			chaosRes.WindowRedecomposes += o.windowRedecomposes
		}
	}
	res.Predict.Requests = len(all)
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.Predict.ThroughputRps = float64(len(all)) / wall.Seconds()
		res.Predict.P50Ms = quantileMs(all, 0.50)
		res.Predict.P95Ms = quantileMs(all, 0.95)
		res.Predict.P99Ms = quantileMs(all, 0.99)
	}
	res.SLOPass = res.Jobs.Lost == 0 && res.Jobs.Failed == 0 && res.Predict.Errors == 0
	if chaosRes != nil {
		// Under chaos the latency bound is waived (a mid-run restart
		// legitimately stalls a few requests into their retry budget);
		// the correctness contract is not.
		res.SLOPass = res.SLOPass &&
			chaosRes.HostileAccepted == 0 && chaosRes.BitwiseMismatch == 0
	} else {
		res.SLOPass = res.SLOPass && res.Predict.P99Ms <= cfg.SLOP99Ms
	}
	return res, nil
}

// inprocServer is the in-process ivmfd a run boots when no -addr is
// given: service + listener, restartable on the same address so the
// chaos harness can kill and recover it mid-run.
type inprocServer struct {
	mu      sync.Mutex
	svc     *service.Service
	srv     *http.Server
	addr    string // pinned after the first bind
	dataDir string
}

func startInproc(dataDir string) (*inprocServer, error) {
	p := &inprocServer{dataDir: dataDir}
	if err := p.open(""); err != nil {
		return nil, err
	}
	return p, nil
}

// open boots the service and listener; an empty addr binds a fresh
// loopback port, otherwise the exact address is reused (restart).
func (p *inprocServer) open(addr string) error {
	s, err := service.Open(service.Config{DataDir: p.dataDir})
	if err != nil {
		return err
	}
	s.Start()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		// A restart re-binds the port the dying listener just released;
		// give the kernel a moment to finish the teardown.
		if attempt >= 100 {
			_ = s.Close()
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	p.mu.Lock()
	p.svc, p.srv, p.addr = s, srv, ln.Addr().String()
	p.mu.Unlock()
	return nil
}

func (p *inprocServer) base() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return "http://" + p.addr
}

func (p *inprocServer) service() *service.Service {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.svc
}

// stop drains admitted jobs, shuts the listener down, and closes the
// store.
func (p *inprocServer) stop() error {
	p.mu.Lock()
	s, srv := p.svc, p.srv
	p.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return s.Close()
}

// restart is the chaos kill: graceful drain (every acknowledged job is
// already durable), full teardown, then recovery on the same address
// from the same store. Clients ride it out on their retry budget.
func (p *inprocServer) restart() error {
	if err := p.stop(); err != nil {
		return err
	}
	return p.open(p.addr)
}

// chaosHarness runs the background fault injectors of a -chaos run.
type chaosHarness struct {
	inp  *inprocServer
	base string

	mu     sync.Mutex
	stats  chaosStats
	errs   []error
	stop   chan struct{}
	wg     sync.WaitGroup
	armed  bool
	kicked bool
	kick   chan struct{} // restart trigger
}

func newChaosHarness(inp *inprocServer, base string) *chaosHarness {
	return &chaosHarness{inp: inp, base: base, stop: make(chan struct{}), kick: make(chan struct{})}
}

// tenantOpts assigns roles: tenant 0 is the chaos tenant (poisoned,
// tolerated), everyone else is healthy and bitwise-verified. The
// restart trigger arms on the first healthy acknowledgement so the kill
// lands mid-traffic.
func (c *chaosHarness) tenantOpts(t, tenants int) tenantOpts {
	if t == 0 && tenants > 1 {
		return tenantOpts{chaotic: true, afterDecompose: c.armFailpoints}
	}
	return tenantOpts{verify: true, afterUpdate: c.kickRestart}
}

// armFailpoints poisons the chaos tenant once its model is up: enough
// consecutive executor panics to trip quarantine, plus store faults
// (absorbed by persist retry, feeding the breaker's failure counts).
func (c *chaosHarness) armFailpoints() {
	c.mu.Lock()
	if c.armed {
		c.mu.Unlock()
		return
	}
	c.armed = true
	c.mu.Unlock()
	c.arm()
}

// arm installs the chaos tenant's failpoints on the current service
// instance (called again after a restart — failpoints die with the
// instance they were armed on).
func (c *chaosHarness) arm() {
	s := c.inp.service()
	s.ArmFailpoint(service.FailExec, service.FailpointSpec{
		Tenant: "tenant-0", Mode: service.FailPanic, Count: service.DefaultQuarantineAfter,
	})
	s.ArmFailpoint(service.FailPersist, service.FailpointSpec{
		Tenant: "tenant-0", Mode: service.FailError, Count: 2,
	})
}

// kickRestart fires the mid-run restart once (durable runs only).
func (c *chaosHarness) kickRestart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kicked {
		return
	}
	c.kicked = true
	close(c.kick)
}

func (c *chaosHarness) start(ctx context.Context) {
	c.wg.Add(2)
	go c.hostileLoop(ctx)
	go c.disconnectLoop(ctx)
	if c.inp.dataDir != "" {
		c.wg.Add(1)
		go c.restartLoop(ctx)
	}
}

// finish stops the injectors and returns the collected stats; injector
// errors surface as bitwise mismatches would — by failing the run.
func (c *chaosHarness) finish() (*chaosStats, error) {
	close(c.stop)
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	if len(c.errs) > 0 {
		return &st, c.errs[0]
	}
	return &st, nil
}

// hostilePayloads are admission envelopes that must all be rejected
// 4xx: malformed JSON, unknown fields, traversal tenant names, bombs
// declaring huge dimensions, and non-finite knobs.
var hostilePayloads = []string{
	`{"tenant":"h","kind":"decompose","coo":"2,2\n0,0,1\n"`, // truncated JSON
	`{"tenant":"h","kind":"decompose","boom":1}`,            // unknown field
	`{"tenant":"..","kind":"update","delta":"1,1\n0,0,1\n"}`,
	`{"tenant":"h","kind":"decompose","coo":"999999999,999999999\n0,0,1\n"}`,
	`{"tenant":"h","kind":"update","delta":"2,2\n0,0,nan\n"}`,
	`{"tenant":"h","kind":"wat"}`,
	`not json at all`,
}

// hostileLoop hurls poison at POST /v1/jobs. Any 2xx answer is a
// contract violation; 4xx is the expected rejection; 5xx and transport
// errors are the server being legitimately down mid-restart.
func (c *chaosHarness) hostileLoop(ctx context.Context) {
	defer c.wg.Done()
	hc := &http.Client{Timeout: 5 * time.Second}
	for i := 0; ; i++ {
		select {
		case <-c.stop:
			return
		case <-ctx.Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
		body := hostilePayloads[i%len(hostilePayloads)]
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.mu.Lock()
		c.stats.HostileSent++
		if resp.StatusCode < 400 {
			c.stats.HostileAccepted++
		}
		c.mu.Unlock()
	}
}

// disconnectLoop opens raw connections, sends partial requests, and
// slams them shut — the server must shrug (bounded read timeouts, no
// goroutine pile-up).
func (c *chaosHarness) disconnectLoop(ctx context.Context) {
	defer c.wg.Done()
	addr := strings.TrimPrefix(c.base, "http://")
	for i := 0; ; i++ {
		select {
		case <-c.stop:
			return
		case <-ctx.Done():
			return
		case <-time.After(25 * time.Millisecond):
		}
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			continue
		}
		switch i % 3 {
		case 0: // headers promised, body never sent
			fmt.Fprintf(conn, "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n{\"tenant\"")
		case 1: // header line cut mid-token
			fmt.Fprintf(conn, "GET /v1/topn?tenant=ten")
		case 2: // immediate close
		}
		_ = conn.Close()
		c.mu.Lock()
		c.stats.Disconnects++
		c.mu.Unlock()
	}
}

// restartLoop waits for the first healthy acknowledgement, then kills
// and recovers the server mid-run.
func (c *chaosHarness) restartLoop(ctx context.Context) {
	defer c.wg.Done()
	select {
	case <-c.stop:
		return
	case <-ctx.Done():
		return
	case <-c.kick:
	}
	if err := c.inp.restart(); err != nil {
		c.mu.Lock()
		c.errs = append(c.errs, fmt.Errorf("chaos restart: %w", err))
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.stats.Restarts++
	rearm := c.armed
	c.mu.Unlock()
	if rearm {
		c.arm()
	}
}

// injectedFailure recognizes a job failure caused by the harness's own
// faults (panic, injected store error, quarantine fallout) as opposed
// to a real service bug.
func injectedFailure(msg string) bool {
	for _, marker := range []string{"panicked", "injected", "store unavailable", "deadline"} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// busyRejection recognizes an admission rejection (backpressure,
// quarantine, breaker) that the chaos tenant is expected to absorb.
func busyRejection(err error) bool {
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable
}

// driveTenant replays one tenant's life: decompose the base matrix,
// then apply the delta stream sequentially while closed-loop predict
// workers measure serving latency.
func driveTenant(ctx context.Context, base, tenant string, cfg loadConfig, seed int64, topt tenantOpts) (o tenantOutcome) {
	rng := rand.New(rand.NewSource(seed))
	data, err := dataset.GenerateRatings(dataset.MovieLensLike().Scaled(cfg.Scale), rng)
	if err != nil {
		o.err = err
		return o
	}
	m := data.CFIntervalsCSR()
	var baseCells []sparse.ITriplet
	var ops []windowOp
	if cfg.Window {
		baseCells, ops, err = windowOps(m, cfg.Batches, rng)
	} else {
		var deltas [][]sparse.ITriplet
		baseCells, deltas, err = dataset.StreamSplit(m, 0.1, cfg.Batches, rng)
		for _, patch := range deltas {
			ops = append(ops, windowOp{batch: dataset.DeltaBatch{Patch: patch}})
		}
	}
	if err != nil {
		o.err = err
		return o
	}
	baseCSR, err := sparse.FromICOO(m.Rows, m.Cols, baseCells)
	if err != nil {
		o.err = err
		return o
	}
	var sb strings.Builder
	if err := dataset.WriteIntervalCOO(&sb, baseCSR); err != nil {
		o.err = err
		return o
	}

	// Retries are generous enough to ride out a full chaos restart
	// (drain + recover) on connection errors alone; idempotency keys
	// below make retried submissions exactly-once.
	c := &service.Client{Base: base, Retry: &service.RetryPolicy{
		MaxAttempts: 10, BaseBackoff: 25 * time.Millisecond, MaxBackoff: time.Second, Seed: seed,
	}}
	defer func() { o.jobs.Retried = int(c.Retries()) }()
	jobN := 0
	// submitAndWait returns (tolerated, err): tolerated means the job
	// was sacrificed to an injected fault on the chaos tenant.
	submitAndWait := func(req service.Request) (bool, error) {
		jobN++
		key := fmt.Sprintf("%s:%s:%d", tenant, req.Kind, jobN)
		info, err := c.SubmitIdem(ctx, req, key)
		if err != nil {
			if topt.chaotic && busyRejection(err) {
				o.rejectedBusy++
				return true, nil
			}
			return false, err
		}
		o.jobs.Submitted++
		if info.Deduped {
			o.jobs.Deduped++
		}
		info, err = c.WaitJob(ctx, info.ID, 2*time.Millisecond)
		if err != nil {
			o.jobs.Lost++
			return false, err
		}
		switch info.State {
		case service.JobDone:
			o.jobs.Done++
		case service.JobFailed:
			if topt.chaotic && injectedFailure(info.Error) {
				o.injectedFailures++
				return true, nil
			}
			o.jobs.Failed++
			return false, fmt.Errorf("job %d failed: %s", info.ID, info.Error)
		default:
			o.jobs.Lost++
			return false, fmt.Errorf("job %d stuck in state %q", info.ID, info.State)
		}
		return false, nil
	}

	if _, err := submitAndWait(service.Request{
		Tenant: tenant, Kind: "decompose", Method: "ISVD4", Rank: cfg.Rank,
		Target: "b", Min: 1, Max: 5, COO: sb.String(),
	}); err != nil {
		o.err = err
		return o
	}
	if topt.afterDecompose != nil {
		topt.afterDecompose()
	}

	// Closed-loop predict hammers: each worker issues the next request
	// as soon as the previous answer lands.
	stop := make(chan struct{})
	var hwg sync.WaitGroup
	lat := make([][]time.Duration, cfg.Hammers)
	errs := make([]int, cfg.Hammers)
	for h := 0; h < cfg.Hammers; h++ {
		hwg.Add(1)
		go func(h int) {
			defer hwg.Done()
			hrng := rand.New(rand.NewSource(seed*1000 + int64(h)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				cells := make([][2]int, cfg.Cells)
				for i := range cells {
					cells[i] = [2]int{hrng.Intn(m.Rows), hrng.Intn(m.Cols)}
				}
				t0 := time.Now()
				if _, err := c.Predict(ctx, tenant, cells); err != nil {
					errs[h]++
					continue
				}
				lat[h] = append(lat[h], time.Since(t0))
			}
		}(h)
	}

	// Window runs verify at every acknowledged version: the offline
	// chain advances in lockstep with the acknowledged updates, and a
	// probe predict after each ack must match it bitwise.
	var wv *windowVerifier
	if topt.verify && cfg.Window {
		wv, err = newWindowVerifier(baseCSR, cfg, m.Rows, m.Cols, seed)
		if err != nil {
			o.err = err
			close(stop)
			hwg.Wait()
			return o
		}
	}

	// The delta replay is the run's backbone: hammers run exactly as
	// long as the tenant has stream traffic in flight. acked tracks
	// which deltas the server acknowledged — the offline chain
	// replays exactly those.
	var streamErr error
	expiryAcked := false
	acked := make([]bool, len(ops))
	for k, op := range ops {
		text, err := renderDelta(cfg.Window, m.Rows, m.Cols, op.batch)
		if err != nil {
			streamErr = err
			break
		}
		tolerated, err := submitAndWait(service.Request{
			Tenant: tenant, Kind: "update", Delta: text,
			Forget: op.forget, Refresh: op.refresh, OrthoBudget: op.orthoBudget,
		})
		if err != nil {
			streamErr = fmt.Errorf("delta %d: %w", k, err)
			break
		}
		acked[k] = !tolerated
		if acked[k] && op.injectedExpiry {
			expiryAcked = true
		}
		if acked[k] && wv != nil {
			mm, err := wv.step(ctx, c, tenant, op, text)
			if err != nil {
				streamErr = fmt.Errorf("delta %d: %w", k, err)
				break
			}
			o.bitwiseChecked = true
			o.bitwiseMismatch += mm
		}
		if !tolerated && topt.afterUpdate != nil {
			topt.afterUpdate()
		}
	}
	close(stop)
	hwg.Wait()
	for h := 0; h < cfg.Hammers; h++ {
		o.latencies = append(o.latencies, lat[h]...)
		o.predErrs += errs[h]
	}
	o.err = streamErr

	if wv != nil && o.err == nil {
		h := wv.d.Health()
		o.windowRedecomposes = h.Redecomposes
		if expiryAcked && h.Redecomposes == 0 {
			o.err = fmt.Errorf("injected ill-conditioned removal was acknowledged but never escalated (health %+v)", h)
		}
	}
	if topt.verify && !cfg.Window && o.err == nil {
		var deltas [][]sparse.ITriplet
		for _, op := range ops {
			deltas = append(deltas, op.batch.Patch)
		}
		checked, mismatches, err := verifyBitwise(ctx, c, tenant, cfg, baseCSR, deltas, acked, m.Rows, m.Cols, seed)
		if err != nil {
			o.err = err
		} else if checked {
			o.bitwiseChecked = true
			o.bitwiseMismatch = mismatches
		}
	}
	return o
}

// windowOp is one sliding-window update of the replay: a delta batch
// plus the engine policy knobs it is submitted with. Verified tenants
// replay exactly these offline.
type windowOp struct {
	batch       dataset.DeltaBatch
	forget      float64
	refresh     string
	orthoBudget float64
	// injectedExpiry marks the expiry half of the injected
	// ill-conditioned removal cycle: once acknowledged, the offline
	// chain must show a guardrail redecompose.
	injectedExpiry bool
}

// windowForget decays the window's spectrum a little on every regular
// batch, so the WAL round-trips λ under fire.
const windowForget = 0.95

// violentMass is the magnitude of the injected arrive-and-expire cell:
// orders of magnitude above the 1-5 rating spectrum, so its removal is
// the near-σ_r cancellation the downdate guardrail exists for.
const violentMass = 5e5

// renderDelta writes one op's batch in the wire format of its mode: the
// tombstone-capable batch format for window runs, the plain patch
// format (byte-identical to earlier stream runs) otherwise.
func renderDelta(window bool, rows, cols int, batch dataset.DeltaBatch) (string, error) {
	var db strings.Builder
	var err error
	if window {
		err = dataset.WriteDeltaBatchCOO(&db, rows, cols, batch)
	} else {
		err = dataset.WriteDeltaCOO(&db, rows, cols, batch.Patch)
	}
	return db.String(), err
}

// windowOps builds a tenant's sliding-window replay: the WindowSplit
// batches (each decaying by λ), with an injected cycle after the first
// batch — a cell dwarfing the spectrum arrives (the lax ortho budget
// lets the violent append through additively), then expires under
// refresh-never, forcing the ill-conditioned-downdate guardrail to
// abandon the damaged chain and redecompose. The cycle uses a cell no
// other op touches, so the rest of the window slides undisturbed.
func windowOps(m *sparse.ICSR, batches int, rng *rand.Rand) ([]sparse.ITriplet, []windowOp, error) {
	base, wbatches, err := dataset.WindowSplit(m, 0.1, batches, rng)
	if err != nil {
		return nil, nil, err
	}
	used := make(map[sparse.Cell]bool, m.NNZ())
	for _, t := range base {
		used[sparse.Cell{Row: t.Row, Col: t.Col}] = true
	}
	for _, b := range wbatches {
		for _, t := range b.Patch {
			used[sparse.Cell{Row: t.Row, Col: t.Col}] = true
		}
	}
	spare, found := sparse.Cell{}, false
	for i := 0; i < m.Rows && !found; i++ {
		for j := 0; j < m.Cols; j++ {
			if !used[sparse.Cell{Row: i, Col: j}] {
				spare, found = sparse.Cell{Row: i, Col: j}, true
				break
			}
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("window: no untouched cell left for the injected removal")
	}
	ops := []windowOp{{batch: wbatches[0], forget: windowForget}}
	ops = append(ops,
		windowOp{batch: dataset.DeltaBatch{Patch: []sparse.ITriplet{
			{Row: spare.Row, Col: spare.Col, Lo: violentMass, Hi: violentMass + violentMass/5},
		}}, refresh: "never", orthoBudget: 1e6},
		windowOp{batch: dataset.DeltaBatch{Tombstones: []sparse.Cell{spare}}, refresh: "never", injectedExpiry: true})
	for _, b := range wbatches[1:] {
		ops = append(ops, windowOp{batch: b, forget: windowForget})
	}
	return base, ops, nil
}

// windowVerifier advances the offline window chain in lockstep with the
// server's acknowledged updates and compares served predictions bitwise
// at every version — the serving contract of a sliding window: never a
// stale, drifted, or non-finite number, even while the guardrails are
// redecomposing underneath.
type windowVerifier struct {
	d      *core.Decomposition
	probes [][2]int
}

func newWindowVerifier(baseCSR *sparse.ICSR, cfg loadConfig, rows, cols int, seed int64) (*windowVerifier, error) {
	d, err := core.DecomposeSparse(baseCSR, core.ISVD4,
		core.Options{Rank: cfg.Rank, Target: core.TargetB, Updatable: true})
	if err != nil {
		return nil, fmt.Errorf("offline decompose: %w", err)
	}
	prng := rand.New(rand.NewSource(seed + 7919))
	probes := make([][2]int, 32)
	for i := range probes {
		probes[i] = [2]int{prng.Intn(rows), prng.Intn(cols)}
	}
	return &windowVerifier{d: d, probes: probes}, nil
}

// step replays one acknowledged op offline — parsing the exact wire
// text so the cell order matches the server's — and probes the served
// model against it. Returns the number of bitwise mismatches (a
// non-finite served value counts as one: a poisoned snapshot must never
// reach a client).
func (v *windowVerifier) step(ctx context.Context, c *service.Client, tenant string, op windowOp, text string) (int, error) {
	_, _, pb, err := dataset.ParseDeltaCOO(strings.NewReader(text))
	if err != nil {
		return 0, fmt.Errorf("offline parse: %w", err)
	}
	sortBatch(&pb)
	opts := core.Options{OrthoBudget: op.orthoBudget}
	if op.refresh != "" {
		r, err := core.ParseRefresh(op.refresh)
		if err != nil {
			return 0, err
		}
		opts.Refresh = r
	}
	v.d, err = v.d.Update(core.Delta{Forget: op.forget, Patch: pb.Patch, Unpatch: pb.Tombstones}, opts)
	if err != nil {
		return 0, fmt.Errorf("offline update: %w", err)
	}
	pred, err := recommend.FromSparseDecomposition(v.d, 1, 5)
	if err != nil {
		return 0, err
	}
	resp, err := c.Predict(ctx, tenant, v.probes)
	if err != nil {
		return 0, fmt.Errorf("verify predict: %w", err)
	}
	mismatches := 0
	for i, p := range resp.Predictions {
		iv, err := pred.PredictInterval(v.probes[i][0], v.probes[i][1])
		if err != nil {
			return 0, err
		}
		if math.IsNaN(p.Lo) || math.IsInf(p.Lo, 0) || math.IsNaN(p.Hi) || math.IsInf(p.Hi, 0) ||
			math.Float64bits(p.Lo) != math.Float64bits(iv.Lo) ||
			math.Float64bits(p.Hi) != math.Float64bits(iv.Hi) {
			mismatches++
		}
	}
	return mismatches, nil
}

// sortBatch orders a parsed batch exactly like the service's request
// parser (dataset.ReadDeltaCOO order), keeping the chains comparable.
func sortBatch(b *dataset.DeltaBatch) {
	sort.Slice(b.Patch, func(a, c int) bool {
		if b.Patch[a].Row != b.Patch[c].Row {
			return b.Patch[a].Row < b.Patch[c].Row
		}
		return b.Patch[a].Col < b.Patch[c].Col
	})
	sort.Slice(b.Tombstones, func(a, c int) bool {
		if b.Tombstones[a].Row != b.Tombstones[c].Row {
			return b.Tombstones[a].Row < b.Tombstones[c].Row
		}
		return b.Tombstones[a].Col < b.Tombstones[c].Col
	})
}

// verifyBitwise replays the tenant's acknowledged chain offline — the
// service's exact recipe: one updatable ISVD4 decomposition, one
// functional Update per acked delta — and compares served predictions
// bitwise (float64 equality, NaN-safe via math.Float64bits) on a
// deterministic probe set. This is the serving contract under fire: no
// panic, restart, or neighbor's quarantine may perturb a healthy
// tenant's numbers by even one ulp.
func verifyBitwise(ctx context.Context, c *service.Client, tenant string, cfg loadConfig,
	baseCSR *sparse.ICSR, deltas [][]sparse.ITriplet, acked []bool, rows, cols int, seed int64) (bool, int, error) {
	d, err := core.DecomposeSparse(baseCSR, core.ISVD4,
		core.Options{Rank: cfg.Rank, Target: core.TargetB, Updatable: true})
	if err != nil {
		return false, 0, fmt.Errorf("offline decompose: %w", err)
	}
	for k, patch := range deltas {
		if !acked[k] {
			continue
		}
		d, err = d.Update(core.Delta{Patch: patch}, core.Options{})
		if err != nil {
			return false, 0, fmt.Errorf("offline update %d: %w", k, err)
		}
	}
	pred, err := recommend.FromSparseDecomposition(d, 1, 5)
	if err != nil {
		return false, 0, err
	}
	prng := rand.New(rand.NewSource(seed + 7919))
	probes := make([][2]int, 32)
	for i := range probes {
		probes[i] = [2]int{prng.Intn(rows), prng.Intn(cols)}
	}
	resp, err := c.Predict(ctx, tenant, probes)
	if err != nil {
		return false, 0, fmt.Errorf("verify predict: %w", err)
	}
	mismatches := 0
	for i, p := range resp.Predictions {
		iv, err := pred.PredictInterval(probes[i][0], probes[i][1])
		if err != nil {
			return false, 0, err
		}
		if math.Float64bits(p.Lo) != math.Float64bits(iv.Lo) ||
			math.Float64bits(p.Hi) != math.Float64bits(iv.Hi) {
			mismatches++
		}
	}
	return true, mismatches, nil
}

// quantileMs reads the q-quantile of a sorted latency slice in ms.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
