// Command ivmfload is the closed-loop load generator for ivmfd: N
// simulated tenants each decompose a generated ratings matrix, then
// replay a delta stream (the same StreamSplit batches cmd/datagen
// -batches writes) while closed-loop predict workers hammer the serving
// path. It reports per-run job accounting and predict latency quantiles
// as JSON, and checks the service SLO: no admitted job lost, p99
// predict latency within bound. BENCH_service.json in the repo root is
// this tool's committed output.
//
// Usage:
//
//	ivmfload -tenants 1,4,16 -scale 0.1 -rank 10 -batches 3 > BENCH_service.json
//	ivmfload -addr 127.0.0.1:8080 -tenants 4    # against a running ivmfd
//
// Without -addr each run boots its own in-process ivmfd on a loopback
// port, so the numbers include the full HTTP round trip.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/service"
	"repro/internal/sparse"
)

type loadConfig struct {
	Addr     string  `json:"addr,omitempty"`
	Scale    float64 `json:"scale"`
	Rank     int     `json:"rank"`
	Batches  int     `json:"batches"`
	Hammers  int     `json:"hammersPerTenant"`
	Cells    int     `json:"cellsPerPredict"`
	Seed     int64   `json:"seed"`
	SLOP99Ms float64 `json:"sloP99Ms"`
	// DataDir makes the in-process server durable, measuring the
	// write-ahead durability tax under load (ignored with Addr).
	DataDir string `json:"dataDir,omitempty"`
}

type jobStats struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Lost      int `json:"lost"`
}

type predictStats struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ThroughputRps float64 `json:"throughputRps"`
	P50Ms         float64 `json:"p50Ms"`
	P95Ms         float64 `json:"p95Ms"`
	P99Ms         float64 `json:"p99Ms"`
}

type runResult struct {
	Tenants     int          `json:"tenants"`
	WallSeconds float64      `json:"wallSeconds"`
	Jobs        jobStats     `json:"jobs"`
	Predict     predictStats `json:"predict"`
	SLOPass     bool         `json:"sloPass"`
}

type report struct {
	Tool    string      `json:"tool"`
	Config  loadConfig  `json:"config"`
	Runs    []runResult `json:"runs"`
	SLOPass bool        `json:"sloPass"`
}

func main() {
	addr := flag.String("addr", "", "target a running ivmfd (empty = in-process server per run)")
	tenants := flag.String("tenants", "1,4,16", "comma-separated tenant counts, one run each")
	scale := flag.Float64("scale", 0.1, "ratings dataset scale per tenant")
	rank := flag.Int("rank", 10, "decomposition rank")
	batches := flag.Int("batches", 3, "delta batches per tenant")
	hammers := flag.Int("hammers", 2, "closed-loop predict workers per tenant")
	cells := flag.Int("cells", 16, "cells per predict request")
	seed := flag.Int64("seed", 1, "RNG seed")
	sloP99 := flag.Float64("slop99ms", 250, "SLO: p99 predict latency bound in ms")
	dataDir := flag.String("data-dir", "", "durable store root for the in-process server (empty = in-memory)")
	out := flag.String("out", "", "output path (empty = stdout)")
	flag.Parse()

	cfg := loadConfig{Addr: *addr, Scale: *scale, Rank: *rank, Batches: *batches,
		Hammers: *hammers, Cells: *cells, Seed: *seed, SLOP99Ms: *sloP99,
		DataDir: *dataDir}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmfload: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *tenants, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ivmfload: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, tenantList string, cfg loadConfig) error {
	counts, err := parseCounts(tenantList)
	if err != nil {
		return err
	}
	if cfg.Batches < 1 || cfg.Hammers < 0 || cfg.Cells < 1 || cfg.Rank < 1 {
		return fmt.Errorf("bad load shape: batches=%d hammers=%d cells=%d rank=%d",
			cfg.Batches, cfg.Hammers, cfg.Cells, cfg.Rank)
	}
	rep := report{Tool: "cmd/ivmfload", Config: cfg, SLOPass: true}
	for _, n := range counts {
		res, err := runOne(n, cfg)
		if err != nil {
			return fmt.Errorf("%d tenants: %w", n, err)
		}
		rep.Runs = append(rep.Runs, res)
		if !res.SLOPass {
			rep.SLOPass = false
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parseCounts(list string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad tenant count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("empty tenant list")
	}
	return counts, nil
}

// tenantOutcome is one simulated tenant's accounting.
type tenantOutcome struct {
	jobs      jobStats
	latencies []time.Duration // closed-loop predict latencies
	predErrs  int
	err       error
}

// runOne drives one load run at a given tenant count.
func runOne(tenants int, cfg loadConfig) (runResult, error) {
	base := cfg.Addr
	var stopServer func() error
	if base == "" {
		dataDir := cfg.DataDir
		if dataDir != "" {
			// One store per run: tenant names repeat across runs, and a
			// shared store would replay run N-1's models into run N.
			dataDir = filepath.Join(dataDir, fmt.Sprintf("run-%d", tenants))
		}
		var err error
		base, stopServer, err = startServer(dataDir)
		if err != nil {
			return runResult{}, err
		}
		defer func() {
			if stopServer != nil {
				_ = stopServer()
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	start := time.Now()
	outcomes := make([]tenantOutcome, tenants)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			outcomes[t] = driveTenant(ctx, base, fmt.Sprintf("tenant-%d", t), cfg, cfg.Seed+int64(t))
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)

	res := runResult{Tenants: tenants, WallSeconds: wall.Seconds()}
	var all []time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			return res, o.err
		}
		res.Jobs.Submitted += o.jobs.Submitted
		res.Jobs.Done += o.jobs.Done
		res.Jobs.Failed += o.jobs.Failed
		res.Jobs.Lost += o.jobs.Lost
		res.Predict.Errors += o.predErrs
		all = append(all, o.latencies...)
	}
	res.Predict.Requests = len(all)
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.Predict.ThroughputRps = float64(len(all)) / wall.Seconds()
		res.Predict.P50Ms = quantileMs(all, 0.50)
		res.Predict.P95Ms = quantileMs(all, 0.95)
		res.Predict.P99Ms = quantileMs(all, 0.99)
	}
	res.SLOPass = res.Jobs.Lost == 0 && res.Jobs.Failed == 0 &&
		res.Predict.Errors == 0 && res.Predict.P99Ms <= cfg.SLOP99Ms
	return res, nil
}

// startServer boots an in-process ivmfd on a loopback port; a non-empty
// dataDir makes it durable.
func startServer(dataDir string) (base string, stop func() error, err error) {
	s, err := service.Open(service.Config{DataDir: dataDir})
	if err != nil {
		return "", nil, err
	}
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	stop = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			return err
		}
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// driveTenant replays one tenant's life: decompose the base matrix,
// then apply the delta stream sequentially while closed-loop predict
// workers measure serving latency.
func driveTenant(ctx context.Context, base, tenant string, cfg loadConfig, seed int64) tenantOutcome {
	var o tenantOutcome
	rng := rand.New(rand.NewSource(seed))
	data, err := dataset.GenerateRatings(dataset.MovieLensLike().Scaled(cfg.Scale), rng)
	if err != nil {
		o.err = err
		return o
	}
	m := data.CFIntervalsCSR()
	baseCells, deltas, err := dataset.StreamSplit(m, 0.1, cfg.Batches, rng)
	if err != nil {
		o.err = err
		return o
	}
	baseCSR, err := sparse.FromICOO(m.Rows, m.Cols, baseCells)
	if err != nil {
		o.err = err
		return o
	}
	var sb strings.Builder
	if err := dataset.WriteIntervalCOO(&sb, baseCSR); err != nil {
		o.err = err
		return o
	}

	c := &service.Client{Base: base}
	submitAndWait := func(req service.Request) error {
		info, err := c.Submit(ctx, req)
		if err != nil {
			return err
		}
		o.jobs.Submitted++
		info, err = c.WaitJob(ctx, info.ID, 2*time.Millisecond)
		if err != nil {
			o.jobs.Lost++
			return err
		}
		switch info.State {
		case service.JobDone:
			o.jobs.Done++
		case service.JobFailed:
			o.jobs.Failed++
			return fmt.Errorf("job %d failed: %s", info.ID, info.Error)
		default:
			o.jobs.Lost++
			return fmt.Errorf("job %d stuck in state %q", info.ID, info.State)
		}
		return nil
	}

	if err := submitAndWait(service.Request{
		Tenant: tenant, Kind: "decompose", Method: "ISVD4", Rank: cfg.Rank,
		Target: "b", Min: 1, Max: 5, COO: sb.String(),
	}); err != nil {
		o.err = err
		return o
	}

	// Closed-loop predict hammers: each worker issues the next request
	// as soon as the previous answer lands.
	stop := make(chan struct{})
	var hwg sync.WaitGroup
	lat := make([][]time.Duration, cfg.Hammers)
	errs := make([]int, cfg.Hammers)
	for h := 0; h < cfg.Hammers; h++ {
		hwg.Add(1)
		go func(h int) {
			defer hwg.Done()
			hrng := rand.New(rand.NewSource(seed*1000 + int64(h)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				cells := make([][2]int, cfg.Cells)
				for i := range cells {
					cells[i] = [2]int{hrng.Intn(m.Rows), hrng.Intn(m.Cols)}
				}
				t0 := time.Now()
				if _, err := c.Predict(ctx, tenant, cells); err != nil {
					errs[h]++
					continue
				}
				lat[h] = append(lat[h], time.Since(t0))
			}
		}(h)
	}

	// The delta replay is the run's backbone: hammers run exactly as
	// long as the tenant has stream traffic in flight.
	var streamErr error
	for k, patch := range deltas {
		var db strings.Builder
		if err := dataset.WriteDeltaCOO(&db, m.Rows, m.Cols, patch); err != nil {
			streamErr = err
			break
		}
		if err := submitAndWait(service.Request{
			Tenant: tenant, Kind: "update", Delta: db.String(),
		}); err != nil {
			streamErr = fmt.Errorf("delta %d: %w", k, err)
			break
		}
	}
	close(stop)
	hwg.Wait()
	for h := 0; h < cfg.Hammers; h++ {
		o.latencies = append(o.latencies, lat[h]...)
		o.predErrs += errs[h]
	}
	o.err = streamErr
	return o
}

// quantileMs reads the q-quantile of a sorted latency slice in ms.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
