package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSmall runs the full closed loop at a tiny scale: two runs (1
// and 2 tenants), each decompose + 2 deltas with one predict hammer,
// and checks the report: valid JSON, no lost or failed jobs, predicts
// happened.
func TestRunSmall(t *testing.T) {
	cfg := loadConfig{
		Scale: 0.03, Rank: 4, Batches: 2, Hammers: 1, Cells: 4,
		Seed: 7, SLOP99Ms: 60_000, // generous bound: this asserts accounting, not speed
	}
	var sb strings.Builder
	if err := run(&sb, "1,2", cfg); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Tenants != 1 || rep.Runs[1].Tenants != 2 {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	for _, r := range rep.Runs {
		wantJobs := r.Tenants * (1 + cfg.Batches)
		if r.Jobs.Submitted != wantJobs || r.Jobs.Done != wantJobs {
			t.Errorf("%d tenants: jobs %+v, want %d submitted and done", r.Tenants, r.Jobs, wantJobs)
		}
		if r.Jobs.Lost != 0 || r.Jobs.Failed != 0 {
			t.Errorf("%d tenants: lost/failed jobs: %+v", r.Tenants, r.Jobs)
		}
		if r.Predict.Requests == 0 || r.Predict.Errors != 0 {
			t.Errorf("%d tenants: predict stats %+v", r.Tenants, r.Predict)
		}
		if !r.SLOPass {
			t.Errorf("%d tenants: SLO failed: %+v", r.Tenants, r)
		}
	}
	if !rep.SLOPass {
		t.Error("report-level SLO failed")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run(&strings.Builder{}, "1", loadConfig{Scale: 0.05, Rank: 0, Batches: 1, Cells: 1}); err == nil {
		t.Error("rank 0 accepted")
	}
	if err := run(&strings.Builder{}, "1", loadConfig{Scale: 0.05, Rank: 2, Batches: 0, Cells: 1}); err == nil {
		t.Error("0 batches accepted")
	}
}
