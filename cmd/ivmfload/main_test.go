package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSmall runs the full closed loop at a tiny scale: two runs (1
// and 2 tenants), each decompose + 2 deltas with one predict hammer,
// and checks the report: valid JSON, no lost or failed jobs, predicts
// happened.
func TestRunSmall(t *testing.T) {
	cfg := loadConfig{
		Scale: 0.03, Rank: 4, Batches: 2, Hammers: 1, Cells: 4,
		Seed: 7, SLOP99Ms: 60_000, // generous bound: this asserts accounting, not speed
	}
	var sb strings.Builder
	if err := run(&sb, "1,2", cfg); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Tenants != 1 || rep.Runs[1].Tenants != 2 {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	for _, r := range rep.Runs {
		wantJobs := r.Tenants * (1 + cfg.Batches)
		if r.Jobs.Submitted != wantJobs || r.Jobs.Done != wantJobs {
			t.Errorf("%d tenants: jobs %+v, want %d submitted and done", r.Tenants, r.Jobs, wantJobs)
		}
		if r.Jobs.Lost != 0 || r.Jobs.Failed != 0 {
			t.Errorf("%d tenants: lost/failed jobs: %+v", r.Tenants, r.Jobs)
		}
		if r.Predict.Requests == 0 || r.Predict.Errors != 0 {
			t.Errorf("%d tenants: predict stats %+v", r.Tenants, r.Predict)
		}
		if !r.SLOPass {
			t.Errorf("%d tenants: SLO failed: %+v", r.Tenants, r)
		}
	}
	if !rep.SLOPass {
		t.Error("report-level SLO failed")
	}
}

// TestWindowChaosRun is the sliding-window chaos contract end to end:
// three tenants replay expire-heavy window deltas (tombstones + λ decay)
// with an injected ill-conditioned removal each, while the chaos
// harness panics the executor, hurls hostile payloads, tears down
// connections, and kills/restarts the durable server mid-run. The two
// healthy tenants are verified bitwise against the offline windowed
// chain at every acknowledged version (non-finite served values count
// as mismatches), and the injected removals must visibly escalate to a
// redecompose — never silently drift.
func TestWindowChaosRun(t *testing.T) {
	cfg := loadConfig{
		Scale: 0.05, Rank: 4, Batches: 2, Hammers: 1, Cells: 4,
		Seed: 7, SLOP99Ms: 60_000, Window: true, Chaos: true,
		DataDir: t.TempDir(),
	}
	var sb strings.Builder
	if err := run(&sb, "3", cfg); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	r := rep.Runs[0]
	if r.Jobs.Failed != 0 || r.Jobs.Lost != 0 {
		t.Errorf("healthy jobs lost/failed: %+v", r.Jobs)
	}
	ch := r.Chaos
	if ch == nil {
		t.Fatal("no chaos stats")
	}
	if ch.BitwiseChecked != 2 || ch.BitwiseMismatch != 0 {
		t.Errorf("bitwise verification: %+v (want 2 tenants checked, 0 mismatches)", ch)
	}
	if ch.HostileAccepted != 0 {
		t.Errorf("hostile payload accepted: %+v", ch)
	}
	if ch.WindowRedecomposes < 2 {
		t.Errorf("injected ill-conditioned removals escalated %d times, want >= 2 (one per verified tenant)", ch.WindowRedecomposes)
	}
	if ch.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (durable kill/restart mid-run)", ch.Restarts)
	}
	if !rep.SLOPass {
		t.Error("SLO failed under window chaos")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run(&strings.Builder{}, "1", loadConfig{Scale: 0.05, Rank: 0, Batches: 1, Cells: 1}); err == nil {
		t.Error("rank 0 accepted")
	}
	if err := run(&strings.Builder{}, "1", loadConfig{Scale: 0.05, Rank: 2, Batches: 0, Cells: 1}); err == nil {
		t.Error("0 batches accepted")
	}
}
