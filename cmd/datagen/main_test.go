package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunKinds(t *testing.T) {
	// We only verify the generators succeed and emit something parseable.
	cases := []struct {
		kind    string
		privacy string
	}{
		{"uniform", "medium"},
		{"anonymized", "high"},
		{"anonymized", "medium"},
		{"anonymized", "low"},
		{"faces", "medium"},
		{"ratings", "medium"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run(&buf, c.kind, 8, 6, 0, 1, 1, c.privacy, 0.02, 0, "csv", 0, false, "", 1); err != nil {
			t.Errorf("%s/%s: %v", c.kind, c.privacy, err)
			continue
		}
		if _, err := dataset.ReadIntervalCSV(&buf); err != nil {
			t.Errorf("%s/%s: unparseable output: %v", c.kind, c.privacy, err)
		}
	}
}

func TestRunCOOFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 0, false, "", 1); err != nil {
		t.Fatal(err)
	}
	m, err := dataset.ReadIntervalCOO(&buf)
	if err != nil {
		t.Fatalf("unparseable COO output: %v", err)
	}
	if m.NNZ() == 0 {
		t.Error("COO output has no observed cells")
	}
}

func TestRunDensityKnob(t *testing.T) {
	nnz := func(density float64) int {
		var buf bytes.Buffer
		if err := run(&buf, "uniform", 20, 20, 0, 1, 1, "medium", 0.1, density, "coo", 0, false, "", 1); err != nil {
			t.Fatal(err)
		}
		m, err := dataset.ReadIntervalCOO(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return m.NNZ()
	}
	sparse, dense := nnz(0.05), nnz(0.9)
	if sparse >= dense {
		t.Errorf("density knob has no effect: nnz(0.05) = %d >= nnz(0.9) = %d", sparse, dense)
	}
	if sparse > 20*20/4 {
		t.Errorf("5%% density produced %d of %d cells", sparse, 20*20)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(io.Discard, "nope", 8, 6, 0, 1, 1, "medium", 0.1, 0, "csv", 0, false, "", 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(io.Discard, "anonymized", 8, 6, 0, 1, 1, "nope", 0.1, 0, "csv", 0, false, "", 1); err == nil {
		t.Error("unknown privacy accepted")
	}
	if err := run(io.Discard, "uniform", -1, 6, 0, 1, 1, "medium", 0.1, 0, "csv", 0, false, "", 1); err == nil {
		t.Error("bad shape accepted")
	}
	if err := run(io.Discard, "uniform", 8, 6, 0, 1, 1, "medium", 0.1, 0, "nope", 0, false, "", 1); err == nil {
		t.Error("unknown format accepted")
	}
	for _, kind := range []string{"uniform", "ratings"} {
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, 1.5, "csv", 0, false, "", 1); err == nil {
			t.Errorf("%s: density > 1 accepted", kind)
		}
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, -0.1, "csv", 0, false, "", 1); err == nil {
			t.Errorf("%s: negative density accepted", kind)
		}
	}
	// The ratings generator caps observed cells at half the matrix, so
	// densities in (0.5, 1] are rejected rather than silently clamped.
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.1, 0.8, "csv", 0, false, "", 1); err == nil {
		t.Error("ratings density > 0.5 accepted")
	}
	// Kinds without a density notion reject the flag instead of
	// silently ignoring it.
	for _, kind := range []string{"anonymized", "faces"} {
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, 0.05, "csv", 0, false, "", 1); err == nil {
			t.Errorf("%s: unsupported -density accepted", kind)
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "csv", 0, false, "", 1); err != nil {
		t.Errorf("baseline ratings run failed: %v", err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Error("ratings CSV output looks empty")
	}
}

func TestBatchesStableSplit(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "stream")
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 3, false, prefix, 7); err != nil {
		t.Fatal(err)
	}
	// Four files listed: base plus three deltas.
	files := strings.Fields(buf.String())
	if len(files) != 4 {
		t.Fatalf("wrote %d files, want 4: %v", len(files), files)
	}
	baseF, err := os.Open(prefix + ".base.coo.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer baseF.Close()
	base, err := dataset.ReadIntervalCOO(baseF)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying every delta onto the base reproduces the full matrix.
	cur := base
	total := 0
	for k := 1; k <= 3; k++ {
		df, err := os.Open(fmt.Sprintf("%s.delta.%d.coo.csv", prefix, k))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := dataset.ReadDeltaCOO(df, cur)
		df.Close()
		if err != nil {
			t.Fatal(err)
		}
		total += len(batch.Patch)
		cur, err = cur.ApplyPatch(batch.Patch)
		if err != nil {
			t.Fatal(err)
		}
	}
	if total == 0 {
		t.Fatal("deltas carried no cells")
	}
	var full bytes.Buffer
	if err := run(&full, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 0, false, "", 7); err != nil {
		t.Fatal(err)
	}
	want, err := dataset.ReadIntervalCOO(strings.NewReader(full.String()))
	if err != nil {
		t.Fatal(err)
	}
	if cur.NNZ() != want.NNZ() || cur.Rows != want.Rows || cur.Cols != want.Cols {
		t.Fatalf("replayed matrix %dx%d nnz %d, want %dx%d nnz %d",
			cur.Rows, cur.Cols, cur.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for p := range want.ColInd {
		if cur.ColInd[p] != want.ColInd[p] || cur.Lo[p] != want.Lo[p] || cur.Hi[p] != want.Hi[p] {
			t.Fatalf("replayed matrix differs at entry %d", p)
		}
	}
	// Stable split: the same flags reproduce byte-identical files.
	prefix2 := filepath.Join(dir, "again")
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 3, false, prefix2, 7); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".base.coo.csv", ".delta.1.coo.csv", ".delta.2.coo.csv", ".delta.3.coo.csv"} {
		a, err := os.ReadFile(prefix + suffix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(prefix2 + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("split not stable: %s differs", suffix)
		}
	}
}

// TestWindowBatches pins the sliding-window split: replaying each delta
// (patch arrivals, then tombstone expiries) onto the base keeps the
// live-cell count constant, every tombstone lands on a stored cell, and
// identical flags reproduce byte-identical files.
func TestWindowBatches(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "window")
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 3, true, prefix, 7); err != nil {
		t.Fatal(err)
	}
	files := strings.Fields(buf.String())
	if len(files) != 4 {
		t.Fatalf("wrote %d files, want 4: %v", len(files), files)
	}
	baseF, err := os.Open(prefix + ".base.coo.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer baseF.Close()
	cur, err := dataset.ReadIntervalCOO(baseF)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := 0
	for k := 1; k <= 3; k++ {
		df, err := os.Open(fmt.Sprintf("%s.delta.%d.coo.csv", prefix, k))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := dataset.ReadDeltaCOO(df, cur)
		df.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Patch) == 0 || len(batch.Tombstones) != len(batch.Patch) {
			t.Fatalf("batch %d: %d arrivals, %d tombstones; want equal and nonzero",
				k, len(batch.Patch), len(batch.Tombstones))
		}
		arrivals += len(batch.Patch)
		before := cur.NNZ()
		cur, err = cur.ApplyPatch(batch.Patch)
		if err != nil {
			t.Fatal(err)
		}
		// ReadDeltaCOO already proved each tombstone targets a stored
		// cell; ApplyUnpatch enforces it again during the replay.
		cur, err = cur.ApplyUnpatch(batch.Tombstones)
		if err != nil {
			t.Fatal(err)
		}
		if cur.NNZ() != before {
			t.Fatalf("batch %d: window drifted from %d to %d live cells", k, before, cur.NNZ())
		}
	}
	if arrivals == 0 {
		t.Fatal("window deltas carried no cells")
	}
	// Stable split: the same flags reproduce byte-identical files.
	prefix2 := filepath.Join(dir, "again")
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 3, true, prefix2, 7); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".base.coo.csv", ".delta.1.coo.csv", ".delta.2.coo.csv", ".delta.3.coo.csv"} {
		a, err := os.ReadFile(prefix + suffix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(prefix2 + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("window split not stable: %s differs", suffix)
		}
	}
	// Window deltas carry tombstone records that plain stream deltas
	// never do.
	d1, err := os.ReadFile(prefix + ".delta.1.coo.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(d1), ",x\n") {
		t.Errorf("first window delta carries no tombstone records:\n%s", d1)
	}
}

func TestBatchesFlagValidation(t *testing.T) {
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "coo", 0, true, "", 1); err == nil {
		t.Error("-window without -batches accepted")
	}
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "csv", 2, false, "x", 1); err == nil {
		t.Error("-batches with csv format accepted")
	}
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "coo", 2, false, "", 1); err == nil {
		t.Error("-batches without -out accepted")
	}
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "coo", -1, false, "", 1); err == nil {
		t.Error("negative -batches accepted")
	}
}
