package main

import "testing"

func TestRunKinds(t *testing.T) {
	// Output goes to stdout; we only verify the generators succeed.
	cases := []struct {
		kind    string
		privacy string
	}{
		{"uniform", "medium"},
		{"anonymized", "high"},
		{"anonymized", "medium"},
		{"anonymized", "low"},
		{"faces", "medium"},
		{"ratings", "medium"},
	}
	for _, c := range cases {
		if err := run(c.kind, 8, 6, 0, 1, 1, c.privacy, 0.02, 1); err != nil {
			t.Errorf("%s/%s: %v", c.kind, c.privacy, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("nope", 8, 6, 0, 1, 1, "medium", 0.1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("anonymized", 8, 6, 0, 1, 1, "nope", 0.1, 1); err == nil {
		t.Error("unknown privacy accepted")
	}
	if err := run("uniform", -1, 6, 0, 1, 1, "medium", 0.1, 1); err == nil {
		t.Error("bad shape accepted")
	}
}
