package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunKinds(t *testing.T) {
	// We only verify the generators succeed and emit something parseable.
	cases := []struct {
		kind    string
		privacy string
	}{
		{"uniform", "medium"},
		{"anonymized", "high"},
		{"anonymized", "medium"},
		{"anonymized", "low"},
		{"faces", "medium"},
		{"ratings", "medium"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run(&buf, c.kind, 8, 6, 0, 1, 1, c.privacy, 0.02, 0, "csv", 1); err != nil {
			t.Errorf("%s/%s: %v", c.kind, c.privacy, err)
			continue
		}
		if _, err := dataset.ReadIntervalCSV(&buf); err != nil {
			t.Errorf("%s/%s: unparseable output: %v", c.kind, c.privacy, err)
		}
	}
}

func TestRunCOOFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0.05, "coo", 1); err != nil {
		t.Fatal(err)
	}
	m, err := dataset.ReadIntervalCOO(&buf)
	if err != nil {
		t.Fatalf("unparseable COO output: %v", err)
	}
	if m.NNZ() == 0 {
		t.Error("COO output has no observed cells")
	}
}

func TestRunDensityKnob(t *testing.T) {
	nnz := func(density float64) int {
		var buf bytes.Buffer
		if err := run(&buf, "uniform", 20, 20, 0, 1, 1, "medium", 0.1, density, "coo", 1); err != nil {
			t.Fatal(err)
		}
		m, err := dataset.ReadIntervalCOO(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return m.NNZ()
	}
	sparse, dense := nnz(0.05), nnz(0.9)
	if sparse >= dense {
		t.Errorf("density knob has no effect: nnz(0.05) = %d >= nnz(0.9) = %d", sparse, dense)
	}
	if sparse > 20*20/4 {
		t.Errorf("5%% density produced %d of %d cells", sparse, 20*20)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(io.Discard, "nope", 8, 6, 0, 1, 1, "medium", 0.1, 0, "csv", 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(io.Discard, "anonymized", 8, 6, 0, 1, 1, "nope", 0.1, 0, "csv", 1); err == nil {
		t.Error("unknown privacy accepted")
	}
	if err := run(io.Discard, "uniform", -1, 6, 0, 1, 1, "medium", 0.1, 0, "csv", 1); err == nil {
		t.Error("bad shape accepted")
	}
	if err := run(io.Discard, "uniform", 8, 6, 0, 1, 1, "medium", 0.1, 0, "nope", 1); err == nil {
		t.Error("unknown format accepted")
	}
	for _, kind := range []string{"uniform", "ratings"} {
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, 1.5, "csv", 1); err == nil {
			t.Errorf("%s: density > 1 accepted", kind)
		}
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, -0.1, "csv", 1); err == nil {
			t.Errorf("%s: negative density accepted", kind)
		}
	}
	// The ratings generator caps observed cells at half the matrix, so
	// densities in (0.5, 1] are rejected rather than silently clamped.
	if err := run(io.Discard, "ratings", 8, 6, 0, 1, 1, "medium", 0.1, 0.8, "csv", 1); err == nil {
		t.Error("ratings density > 0.5 accepted")
	}
	// Kinds without a density notion reject the flag instead of
	// silently ignoring it.
	for _, kind := range []string{"anonymized", "faces"} {
		if err := run(io.Discard, kind, 8, 6, 0, 1, 1, "medium", 0.1, 0.05, "csv", 1); err == nil {
			t.Errorf("%s: unsupported -density accepted", kind)
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "ratings", 8, 6, 0, 1, 1, "medium", 0.02, 0, "csv", 1); err != nil {
		t.Errorf("baseline ratings run failed: %v", err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Error("ratings CSV output looks empty")
	}
}
