// Command datagen emits the synthetic datasets used by the experiments
// as interval CSV files (cells are "1.5" scalars or "1.0..2.5"
// intervals) or, with -format coo, as sparse interval COO files (header
// "rows,cols", then "row,col,value" records for the observed cells), so
// they can be inspected or fed back through cmd/isvd.
//
// Usage:
//
//	datagen -kind uniform  -rows 40 -cols 250 -intdensity 1 -intensity 1 > m.csv
//	datagen -kind anonymized -rows 40 -cols 250 -privacy high > m.csv
//	datagen -kind faces -scale 0.25 > faces.csv
//	datagen -kind ratings -scale 0.1 > usergenre.csv
//	datagen -kind ratings -scale 0.1 -density 0.02 -format coo > sparse.csv
//	datagen -kind ratings -scale 0.1 -format coo -batches 5 -out stream
//
// With -batches N the generated matrix is split (stable seed split:
// the same flags always produce the same split) into a base COO file
// plus N delta COO files of arriving cell batches — the reproducible
// input of the streaming-update scenario (cmd/experiments stream):
// <out>.base.coo.csv holds the matrix with the streamed cells removed,
// and <out>.delta.K.coo.csv (K = 1..N) each hold one arriving batch in
// the delta COO format of internal/dataset (together ~10% of the
// observed cells).
//
// Adding -window turns the stream into a sliding window: each delta
// additionally carries tombstone records ("row,col,x") expiring exactly
// as many of the oldest live cells as arrive, so replaying the batches
// keeps the live-cell count constant — the reproducible input of the
// sliding-window scenarios (cmd/experiments window, cmd/ivmfload
// -scenario window):
//
//	datagen -kind ratings -scale 0.1 -format coo -batches 5 -window -out win
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/sparse"
)

func main() {
	kind := flag.String("kind", "uniform", "uniform | anonymized | faces | ratings")
	rows := flag.Int("rows", 40, "rows (uniform/anonymized)")
	cols := flag.Int("cols", 250, "cols (uniform/anonymized)")
	zeroFrac := flag.Float64("zerofrac", 0, "fraction of zero cells (uniform)")
	intDensity := flag.Float64("intdensity", 1, "interval density (uniform)")
	intensity := flag.Float64("intensity", 1, "interval intensity (uniform)")
	privacy := flag.String("privacy", "medium", "high | medium | low (anonymized)")
	scale := flag.Float64("scale", 0.25, "dataset scale (faces/ratings)")
	density := flag.Float64("density", 0, "observed-cell fraction: ratings NumRatings override, or 1-zerofrac for uniform (0 = dataset default)")
	format := flag.String("format", "csv", "csv (dense interval CSV) | coo (sparse interval COO)")
	batches := flag.Int("batches", 0, "emit a base COO file plus N delta files for the streaming scenario (requires -format coo and -out)")
	window := flag.Bool("window", false, "with -batches, emit sliding-window delta files: each batch carries arriving cells plus tombstones expiring equally many of the oldest live cells")
	out := flag.String("out", "", "output file prefix for -batches (files <out>.base.coo.csv, <out>.delta.K.coo.csv)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if err := run(os.Stdout, *kind, *rows, *cols, *zeroFrac, *intDensity, *intensity, *privacy, *scale, *density, *format, *batches, *window, *out, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind string, rows, cols int, zeroFrac, intDensity, intensity float64, privacy string, scale, density float64, format string, batches int, window bool, out string, seed int64) error {
	if density < 0 || density > 1 {
		return fmt.Errorf("density %g outside [0, 1]", density)
	}
	if batches < 0 {
		return fmt.Errorf("batches %d negative", batches)
	}
	if batches > 0 && format != "coo" {
		return fmt.Errorf("-batches requires -format coo")
	}
	if batches > 0 && out == "" {
		return fmt.Errorf("-batches requires -out (the files <out>.base.coo.csv and <out>.delta.K.coo.csv are written)")
	}
	if window && batches == 0 {
		return fmt.Errorf("-window requires -batches")
	}
	if density > 0 && kind != "uniform" && kind != "ratings" {
		return fmt.Errorf("-density is not supported for kind %q (only uniform and ratings)", kind)
	}
	rng := rand.New(rand.NewSource(seed))
	var m *imatrix.IMatrix
	var err error
	switch kind {
	case "uniform":
		if density > 0 {
			zeroFrac = 1 - density
		}
		m, err = dataset.GenerateUniform(dataset.SyntheticConfig{
			Rows: rows, Cols: cols, ZeroFrac: zeroFrac,
			IntervalDensity: intDensity, Intensity: intensity,
		}, rng)
	case "anonymized":
		var mix dataset.AnonymizationMix
		switch privacy {
		case "high":
			mix = dataset.HighAnonymity
		case "medium":
			mix = dataset.MediumAnonymity
		case "low":
			mix = dataset.LowAnonymity
		default:
			return fmt.Errorf("unknown privacy level %q", privacy)
		}
		m, err = dataset.GenerateAnonymized(rows, cols, mix, rng)
	case "faces":
		fc := dataset.DefaultFaces()
		if scale < 1 {
			fc.Subjects = max(4, int(float64(fc.Subjects)*scale))
			fc.Res = 16
		}
		var fd *dataset.FaceData
		fd, err = dataset.GenerateFaces(fc, rng)
		if err == nil {
			m = fd.Interval
		}
	case "ratings":
		rc := dataset.MovieLensLike().Scaled(scale)
		if density > 0 {
			// WithDensity caps observed cells at half the matrix (the
			// generator's termination bound); reject rather than
			// silently emit a less dense matrix than asked for.
			if density > 0.5 {
				return fmt.Errorf("ratings density %g exceeds the generator maximum 0.5", density)
			}
			rc = rc.WithDensity(density)
		}
		var data *dataset.RatingsData
		data, err = dataset.GenerateRatings(rc, rng)
		if err == nil {
			m = data.UserGenreIntervals()
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return dataset.WriteIntervalCSV(w, m)
	case "coo":
		if batches > 0 {
			return writeBatches(w, sparse.FromIMatrix(m), batches, window, out, rng)
		}
		return dataset.WriteIntervalCOO(w, sparse.FromIMatrix(m))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// streamFrac is the fraction of observed cells -batches carves out of
// the base matrix as the arriving stream.
const streamFrac = 0.10

// writeBatches splits the observed cells of m into a base matrix and
// `batches` arriving cell batches (dataset.StreamSplit — a stable seed
// split: the shuffle comes from the same seeded generator as the data,
// so identical flags produce identical files), writing
// <out>.base.coo.csv and <out>.delta.K.coo.csv. A summary of the
// written files goes to w. With window, each delta instead carries the
// arriving cells plus tombstones expiring equally many of the oldest
// live cells (dataset.WindowSplit), so replaying the batch files slides
// a constant-size window over the stream.
func writeBatches(w io.Writer, m *sparse.ICSR, batches int, window bool, out string, rng *rand.Rand) error {
	var base []sparse.ITriplet
	var deltas [][]sparse.ITriplet
	var wbatches []dataset.DeltaBatch
	var err error
	if window {
		base, wbatches, err = dataset.WindowSplit(m, streamFrac, batches, rng)
	} else {
		base, deltas, err = dataset.StreamSplit(m, streamFrac, batches, rng)
	}
	if err != nil {
		return err
	}
	baseM, err := sparse.FromICOO(m.Rows, m.Cols, base)
	if err != nil {
		return err
	}
	writeFile := func(name string, emit func(io.Writer) error) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(w, name)
		return nil
	}
	if err := writeFile(out+".base.coo.csv", func(fw io.Writer) error {
		return dataset.WriteIntervalCOO(fw, baseM)
	}); err != nil {
		return err
	}
	if window {
		for k, batch := range wbatches {
			batch := batch
			if err := writeFile(fmt.Sprintf("%s.delta.%d.coo.csv", out, k+1), func(fw io.Writer) error {
				return dataset.WriteDeltaBatchCOO(fw, m.Rows, m.Cols, batch)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for k, batch := range deltas {
		if err := writeFile(fmt.Sprintf("%s.delta.%d.coo.csv", out, k+1), func(fw io.Writer) error {
			return dataset.WriteDeltaCOO(fw, m.Rows, m.Cols, batch)
		}); err != nil {
			return err
		}
	}
	return nil
}
