// Command datagen emits the synthetic datasets used by the experiments
// as interval CSV files (cells are "1.5" scalars or "1.0..2.5"
// intervals) or, with -format coo, as sparse interval COO files (header
// "rows,cols", then "row,col,value" records for the observed cells), so
// they can be inspected or fed back through cmd/isvd.
//
// Usage:
//
//	datagen -kind uniform  -rows 40 -cols 250 -intdensity 1 -intensity 1 > m.csv
//	datagen -kind anonymized -rows 40 -cols 250 -privacy high > m.csv
//	datagen -kind faces -scale 0.25 > faces.csv
//	datagen -kind ratings -scale 0.1 > usergenre.csv
//	datagen -kind ratings -scale 0.1 -density 0.02 -format coo > sparse.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/imatrix"
	"repro/internal/sparse"
)

func main() {
	kind := flag.String("kind", "uniform", "uniform | anonymized | faces | ratings")
	rows := flag.Int("rows", 40, "rows (uniform/anonymized)")
	cols := flag.Int("cols", 250, "cols (uniform/anonymized)")
	zeroFrac := flag.Float64("zerofrac", 0, "fraction of zero cells (uniform)")
	intDensity := flag.Float64("intdensity", 1, "interval density (uniform)")
	intensity := flag.Float64("intensity", 1, "interval intensity (uniform)")
	privacy := flag.String("privacy", "medium", "high | medium | low (anonymized)")
	scale := flag.Float64("scale", 0.25, "dataset scale (faces/ratings)")
	density := flag.Float64("density", 0, "observed-cell fraction: ratings NumRatings override, or 1-zerofrac for uniform (0 = dataset default)")
	format := flag.String("format", "csv", "csv (dense interval CSV) | coo (sparse interval COO)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if err := run(os.Stdout, *kind, *rows, *cols, *zeroFrac, *intDensity, *intensity, *privacy, *scale, *density, *format, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind string, rows, cols int, zeroFrac, intDensity, intensity float64, privacy string, scale, density float64, format string, seed int64) error {
	if density < 0 || density > 1 {
		return fmt.Errorf("density %g outside [0, 1]", density)
	}
	if density > 0 && kind != "uniform" && kind != "ratings" {
		return fmt.Errorf("-density is not supported for kind %q (only uniform and ratings)", kind)
	}
	rng := rand.New(rand.NewSource(seed))
	var m *imatrix.IMatrix
	var err error
	switch kind {
	case "uniform":
		if density > 0 {
			zeroFrac = 1 - density
		}
		m, err = dataset.GenerateUniform(dataset.SyntheticConfig{
			Rows: rows, Cols: cols, ZeroFrac: zeroFrac,
			IntervalDensity: intDensity, Intensity: intensity,
		}, rng)
	case "anonymized":
		var mix dataset.AnonymizationMix
		switch privacy {
		case "high":
			mix = dataset.HighAnonymity
		case "medium":
			mix = dataset.MediumAnonymity
		case "low":
			mix = dataset.LowAnonymity
		default:
			return fmt.Errorf("unknown privacy level %q", privacy)
		}
		m, err = dataset.GenerateAnonymized(rows, cols, mix, rng)
	case "faces":
		fc := dataset.DefaultFaces()
		if scale < 1 {
			fc.Subjects = max(4, int(float64(fc.Subjects)*scale))
			fc.Res = 16
		}
		var fd *dataset.FaceData
		fd, err = dataset.GenerateFaces(fc, rng)
		if err == nil {
			m = fd.Interval
		}
	case "ratings":
		rc := dataset.MovieLensLike().Scaled(scale)
		if density > 0 {
			// WithDensity caps observed cells at half the matrix (the
			// generator's termination bound); reject rather than
			// silently emit a less dense matrix than asked for.
			if density > 0.5 {
				return fmt.Errorf("ratings density %g exceeds the generator maximum 0.5", density)
			}
			rc = rc.WithDensity(density)
		}
		var data *dataset.RatingsData
		data, err = dataset.GenerateRatings(rc, rng)
		if err == nil {
			m = data.UserGenreIntervals()
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return dataset.WriteIntervalCSV(w, m)
	case "coo":
		return dataset.WriteIntervalCOO(w, sparse.FromIMatrix(m))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
