// Command datagen emits the synthetic datasets used by the experiments
// as interval CSV files (cells are "1.5" scalars or "1.0..2.5"
// intervals), so they can be inspected or fed back through cmd/isvd.
//
// Usage:
//
//	datagen -kind uniform  -rows 40 -cols 250 -intdensity 1 -intensity 1 > m.csv
//	datagen -kind anonymized -rows 40 -cols 250 -privacy high > m.csv
//	datagen -kind faces -scale 0.25 > faces.csv
//	datagen -kind ratings -scale 0.1 > usergenre.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/imatrix"
)

func main() {
	kind := flag.String("kind", "uniform", "uniform | anonymized | faces | ratings")
	rows := flag.Int("rows", 40, "rows (uniform/anonymized)")
	cols := flag.Int("cols", 250, "cols (uniform/anonymized)")
	zeroFrac := flag.Float64("zerofrac", 0, "fraction of zero cells (uniform)")
	intDensity := flag.Float64("intdensity", 1, "interval density (uniform)")
	intensity := flag.Float64("intensity", 1, "interval intensity (uniform)")
	privacy := flag.String("privacy", "medium", "high | medium | low (anonymized)")
	scale := flag.Float64("scale", 0.25, "dataset scale (faces/ratings)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if err := run(*kind, *rows, *cols, *zeroFrac, *intDensity, *intensity, *privacy, *scale, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, rows, cols int, zeroFrac, intDensity, intensity float64, privacy string, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var m *imatrix.IMatrix
	var err error
	switch kind {
	case "uniform":
		m, err = dataset.GenerateUniform(dataset.SyntheticConfig{
			Rows: rows, Cols: cols, ZeroFrac: zeroFrac,
			IntervalDensity: intDensity, Intensity: intensity,
		}, rng)
	case "anonymized":
		var mix dataset.AnonymizationMix
		switch privacy {
		case "high":
			mix = dataset.HighAnonymity
		case "medium":
			mix = dataset.MediumAnonymity
		case "low":
			mix = dataset.LowAnonymity
		default:
			return fmt.Errorf("unknown privacy level %q", privacy)
		}
		m, err = dataset.GenerateAnonymized(rows, cols, mix, rng)
	case "faces":
		fc := dataset.DefaultFaces()
		if scale < 1 {
			fc.Subjects = max(4, int(float64(fc.Subjects)*scale))
			fc.Res = 16
		}
		var fd *dataset.FaceData
		fd, err = dataset.GenerateFaces(fc, rng)
		if err == nil {
			m = fd.Interval
		}
	case "ratings":
		var data *dataset.RatingsData
		data, err = dataset.GenerateRatings(dataset.MovieLensLike().Scaled(scale), rng)
		if err == nil {
			m = data.UserGenreIntervals()
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	return dataset.WriteIntervalCSV(os.Stdout, m)
}
