// Package fixture is a minimal module that satisfies every ivmfcheck
// contract: the annotated function iterates slices only, allocates
// nothing, and touches no clocks or random state.
//
//ivmf:deterministic
package fixture

//ivmf:noalloc
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
