// Package fixture deliberately violates two ivmfcheck contracts so the
// integration test can assert a nonzero exit and the exact findings.
package fixture

//ivmf:deterministic
func SumValues(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

//ivmf:noalloc
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}
