package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the ivmfcheck binary once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "ivmfcheck")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/ivmfcheck")
	cmd.Dir = "../.." // repo root, where go.mod lives
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ivmfcheck: %v\n%s", err, out)
	}
	return bin
}

// vet runs `go vet -vettool=bin ./...` inside the given fixture module
// and returns the exit code plus combined output.
func vet(t *testing.T, bin, fixture string) (int, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	// The fixture modules have no dependencies; keep the child hermetic
	// so a network-less environment cannot fail module resolution.
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err = cmd.Run()
	if err == nil {
		return 0, out.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), out.String()
	}
	t.Fatalf("running go vet: %v\n%s", err, out.String())
	return -1, ""
}

// TestVetToolFixtures drives the built binary through cmd/go's
// -vettool protocol over two tiny modules: a contract-violating one
// that must fail with the expected findings, and a conforming one that
// must pass clean.
func TestVetToolFixtures(t *testing.T) {
	bin := buildTool(t)

	t.Run("dirty", func(t *testing.T) {
		code, out := vet(t, bin, "dirty")
		if code == 0 {
			t.Fatalf("dirty fixture passed vet; output:\n%s", out)
		}
		for _, want := range []string{
			"range over map in deterministic function SumValues",
			"make allocates in noalloc function Copy",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("clean", func(t *testing.T) {
		code, out := vet(t, bin, "clean")
		if code != 0 {
			t.Fatalf("clean fixture failed vet (exit %d):\n%s", code, out)
		}
		if strings.Contains(out, "ivmf") {
			t.Errorf("clean fixture produced findings:\n%s", out)
		}
	})
}

// TestStandaloneDelegation checks the direct-invocation path: given a
// package pattern instead of a .cfg file, the binary re-executes
// itself under go vet and propagates the failure.
func TestStandaloneDelegation(t *testing.T) {
	bin := buildTool(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "dirty"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run over dirty fixture succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "range over map in deterministic function SumValues") {
		t.Errorf("standalone output missing finding:\n%s", out)
	}
}
