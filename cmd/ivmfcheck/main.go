// Command ivmfcheck is the repository's static-analysis suite: a vet
// multichecker that mechanically enforces the three contracts the
// numeric subsystems are built on — bitwise determinism for any worker
// count (detorder), allocation-free Into-kernel hot paths (noalloc),
// disjoint row-range writes under the worker pool (poolshard) — plus
// the destination-aliasing convention of the Into kernels (intoalias).
//
// Run it standalone:
//
//	go build -o bin/ivmfcheck ./cmd/ivmfcheck
//	./bin/ivmfcheck ./...
//
// or as a vet tool (what CI gates on):
//
//	go vet -vettool=$PWD/bin/ivmfcheck ./...
//
// See README.md "Correctness tooling" for the //ivmf:deterministic and
// //ivmf:noalloc annotations the suite keys on.
package main

import (
	"repro/internal/analysis/checker"
	"repro/internal/analysis/detorder"
	"repro/internal/analysis/intoalias"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/poolshard"
)

func main() {
	checker.Main(
		detorder.Analyzer,
		noalloc.Analyzer,
		poolshard.Analyzer,
		intoalias.Analyzer,
	)
}
