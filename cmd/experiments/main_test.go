package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{Seed: 1, Trials: 1, Scale: 0.06, Density: 0.05}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), nil, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range experiments.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing id %q", id)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), []string{"fig10"}, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== fig10") {
		t.Errorf("output missing experiment banner:\n%s", out)
	}
	if !strings.Contains(out, "RMSE") {
		t.Errorf("fig10 output missing RMSE table:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), nil, false); err == nil {
		t.Error("missing ids accepted")
	}
	if err := run(&buf, tinyConfig(), []string{"nope"}, false); err == nil {
		t.Error("unknown id accepted")
	}
}
