package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/eig"
	"repro/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{Seed: 1, Trials: 1, Scale: 0.06, Density: 0.05}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), nil, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range experiments.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing id %q", id)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), []string{"fig10"}, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== fig10") {
		t.Errorf("output missing experiment banner:\n%s", out)
	}
	if !strings.Contains(out, "RMSE") {
		t.Errorf("fig10 output missing RMSE table:\n%s", out)
	}
}

// TestSolverAgreement pins the -solver contract at the CLI level: the
// full and truncated backends must reproduce the same experiment numbers
// to 1e-6, far below any reportable difference. fig10 covers the CF RMSE
// path (its PMF training never touches the eig solvers, so agreement
// there is the no-regression floor); fig5 actually decomposes (ISVD4 on
// the default synthetic at rank 20, where auto routes the Gram step to
// the truncated solver), so its cosine series would drift if the
// truncated solver diverged.
func TestSolverAgreement(t *testing.T) {
	for _, id := range []string{"fig10", "fig5"} {
		results := map[eig.Solver]*experiments.Result{}
		for _, sv := range []eig.Solver{eig.SolverFull, eig.SolverTruncated} {
			cfg := tinyConfig()
			cfg.Solver = sv
			res, err := experiments.Run(id, cfg)
			if err != nil {
				t.Fatalf("%s solver %v: %v", id, sv, err)
			}
			results[sv] = res
		}
		full, trunc := results[eig.SolverFull], results[eig.SolverTruncated]
		if len(full.Values) == 0 || len(full.Values) != len(trunc.Values) {
			t.Fatalf("%s: value sets differ: %d vs %d", id, len(full.Values), len(trunc.Values))
		}
		for k, fv := range full.Values {
			tv, ok := trunc.Values[k]
			if !ok {
				t.Fatalf("%s: truncated run missing %q", id, k)
			}
			if d := math.Abs(fv - tv); d > 1e-6 {
				t.Errorf("%s %s: full %.9f vs truncated %.9f (drift %g)", id, k, fv, tv, d)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyConfig(), nil, false); err == nil {
		t.Error("missing ids accepted")
	}
	if err := run(&buf, tinyConfig(), []string{"nope"}, false); err == nil {
		t.Error("unknown id accepted")
	}
}
