// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [flags] <id>...     # e.g. fig6a table2a fig10
//	experiments [flags] all
//	experiments stream              # streaming-update scenario: per-batch
//	                                # incremental-update latency vs full
//	                                # redecomposition (BENCH_update.json
//	                                # holds the committed baseline)
//
// Flags:
//
//	-full        paper-scale run (100 trials, full datasets, LP on)
//	-trials N    override the trial count
//	-scale F     override the dataset scale factor
//	-density F   override the ratings observed-cell fraction (sparse CSR paths)
//	-seed N      RNG seed (default 1)
//	-solver S    eigen/SVD backend: auto (default), full, or truncated
//	-lp          include the (slow) LP competitor class
//	-workers N   bound the worker pool (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/eig"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("full", false, "paper-scale configuration")
	trials := flag.Int("trials", 0, "override trial count")
	scale := flag.Float64("scale", 0, "override dataset scale")
	density := flag.Float64("density", 0, "override ratings observed-cell fraction (0 = dataset default)")
	seed := flag.Int64("seed", 0, "RNG seed")
	withLP := flag.Bool("lp", false, "include the LP competitor class")
	solver := flag.String("solver", "auto", "eigen/SVD backend of the ISVD/PCA decompositions (the LP competitor always uses the full solver): auto, full, or truncated")
	workers := flag.Int("workers", 0, "worker-pool goroutines (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()
	parallel.SetWorkers(*workers)

	// -list short-circuits before any flag validation: the listing must
	// print regardless of what other flags hold.
	if *list {
		if err := run(os.Stdout, experiments.Config{}, nil, true); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *density > 0 {
		// The ratings generator caps observed cells at half the matrix;
		// reject rather than silently run at a lower density than asked.
		if *density > 0.5 {
			fmt.Fprintf(os.Stderr, "-density %g exceeds the ratings generator maximum 0.5\n", *density)
			os.Exit(2)
		}
		cfg.Density = *density
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *withLP {
		cfg.WithLP = true
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	sv, err := eig.ParseSolver(*solver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	cfg.Solver = sv

	if err := run(os.Stdout, cfg, flag.Args(), false); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}

// run executes the listed experiments (or prints the id listing) to w.
func run(w io.Writer, cfg experiments.Config, ids []string, list bool) error {
	if list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(w, "%-8s %s\n", id, experiments.Describe(id))
		}
		return nil
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiment ids given; use -list to see them or 'all' to run everything")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s — %s (%.1fs) ==\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
	}
	return nil
}
