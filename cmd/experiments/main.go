// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [flags] <id>...     # e.g. fig6a table2a fig10
//	experiments [flags] all
//
// Flags:
//
//	-full        paper-scale run (100 trials, full datasets, LP on)
//	-trials N    override the trial count
//	-scale F     override the dataset scale factor
//	-seed N      RNG seed (default 1)
//	-lp          include the (slow) LP competitor class
//	-workers N   bound the worker pool (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("full", false, "paper-scale configuration")
	trials := flag.Int("trials", 0, "override trial count")
	scale := flag.Float64("scale", 0, "override dataset scale")
	seed := flag.Int64("seed", 0, "RNG seed")
	withLP := flag.Bool("lp", false, "include the LP competitor class")
	workers := flag.Int("workers", 0, "worker-pool goroutines (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()
	parallel.SetWorkers(*workers)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *withLP {
		cfg.WithLP = true
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "no experiment ids given; use -list to see them or 'all' to run everything")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %s (%.1fs) ==\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
	}
}
