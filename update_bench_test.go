package ivmf_test

// Streaming-update benchmarks backing BENCH_update.json: cold full
// decomposition vs additive factor update vs warm-started refresh on
// n×n sparse interval matrices with a fixed stored-cell budget and
// spectral decay (the regime the truncated solver serves; same
// construction family as the internal/eig solver benchmarks). Batches
// patch the stored cells of whole rows — the arriving-ratings shape,
// where a batch's factor rank is its touched-row count — at 0.1%, 1%,
// and 10% of NNZ.
//
// The committed BENCH_update.json pins the acceptance numbers: the
// additive update is >=5x faster than a full redecomposition at batches
// <=1% of NNZ (1024^2, r=20), and a warm-started truncated re-solve of
// drifted data is >=2x faster than the cold solve.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eig"
	"repro/internal/sparse"
)

// benchStreamMatrix builds an n×n non-negative sparse interval matrix
// with ~nnz stored cells from decaying rank-1 8×8 patches (spectral
// decay → the truncated solver converges; non-negative endpoints → every
// ISVD method is updatable).
func benchStreamMatrix(n, nnz int) *sparse.ICSR {
	rng := rand.New(rand.NewSource(101))
	acc := map[[2]int]float64{}
	scale := 1.0
	for len(acc) < nnz {
		ris := rng.Perm(n)[:8]
		cis := rng.Perm(n)[:8]
		for _, r := range ris {
			for _, c := range cis {
				acc[[2]int{r, c}] += scale * math.Abs(rng.NormFloat64())
			}
		}
		scale *= 0.85
		if scale < 1e-4 {
			scale = 1e-4
		}
	}
	ts := make([]sparse.ITriplet, 0, len(acc))
	for rc, v := range acc {
		ts = append(ts, sparse.ITriplet{Row: rc[0], Col: rc[1], Lo: v, Hi: 1.2 * v})
	}
	m, err := sparse.FromICOO(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// rowBatch builds a cell-patch delta over whole stored rows totalling
// roughly frac of the matrix's NNZ (scaling every touched cell by 1.01)
// — the arriving-ratings batch shape whose factor rank is the touched
// row count.
func rowBatch(m *sparse.ICSR, frac float64) core.Delta {
	target := int(float64(m.NNZ()) * frac)
	if target < 1 {
		target = 1
	}
	var patch []sparse.ITriplet
	for i := 0; i < m.Rows && len(patch) < target; i++ {
		cols, lo, hi := m.RowView(i)
		for p, j := range cols {
			patch = append(patch, sparse.ITriplet{Row: i, Col: j, Lo: lo[p] * 1.01, Hi: hi[p] * 1.01})
		}
	}
	return core.Delta{Patch: patch}
}

const benchUpdateNNZ = 40000

func benchUpdateOpts() core.Options {
	return core.Options{Rank: 20, Target: core.TargetB, Updatable: true}
}

// BenchmarkUpdateColdDecompose is the from-scratch baseline every
// arriving batch previously paid: a full sparse redecomposition.
func BenchmarkUpdateColdDecompose(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		// The baseline pays exactly what a non-streaming consumer would:
		// no Updatable state capture.
		opts := benchUpdateOpts()
		opts.Updatable = false
		b.Run(fmt.Sprintf("n=%d/r=20", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.DecomposeSparse(m, core.ISVD4, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdateAdditive is the engine's additive path: Brand factor
// fold plus the factor-sized pipeline re-run, no re-solve.
func BenchmarkUpdateAdditive(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, frac := range []float64{0.001, 0.01, 0.10} {
			delta := rowBatch(m, frac)
			b.Run(fmt.Sprintf("n=%d/r=20/batch=%g%%", n, frac*100), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := d.Update(delta, core.Options{Refresh: core.RefreshNever}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkUpdateWarmRefresh forces the refresh path on every batch:
// additive fold plus a warm-started truncated re-solve of both
// endpoints from the updated matrix.
func BenchmarkUpdateWarmRefresh(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		d, err := core.DecomposeSparse(m, core.ISVD4, benchUpdateOpts())
		if err != nil {
			b.Fatal(err)
		}
		delta := rowBatch(m, 0.01)
		b.Run(fmt.Sprintf("n=%d/r=20/batch=1%%", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.Update(delta, core.Options{Refresh: core.RefreshAlways}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmStartTruncatedSVD isolates the warm-start win inside the
// solver: re-decomposing a drifted sparse matrix cold vs seeded with the
// pre-drift factors (eig.Options.StartU/StartV).
func BenchmarkWarmStartTruncatedSVD(b *testing.B) {
	for _, n := range []int{512, 1024} {
		m := benchStreamMatrix(n, benchUpdateNNZ)
		prev, err := eig.TruncatedSVD(sparse.NewOperator(m.LoCSR()), 20)
		if err != nil {
			b.Fatal(err)
		}
		// Drift: scale one small row batch, ~0.1% of NNZ — the
		// accumulated-drift scale at which RefreshAuto re-solves.
		drifted, err := m.ApplyPatch(rowBatch(m, 0.001).Patch)
		if err != nil {
			b.Fatal(err)
		}
		op := sparse.NewOperator(drifted.LoCSR())
		b.Run(fmt.Sprintf("n=%d/r=20/cold", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eig.TruncatedSVD(op, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/r=20/warm", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eig.TruncatedSVDOpts(op, 20, eig.Options{StartU: prev.U, StartV: prev.V}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
