package ivmf_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6), each delegating to the corresponding
// experiment runner in internal/experiments at a reduced scale so
// `go test -bench=.` completes in minutes. Reported custom metrics carry
// the experiment's headline number (H-mean, RMSE, F1, or NMI) so bench
// output doubles as a regression record of the reproduced shapes.
// Run `cmd/experiments -full` for paper-scale numbers.
//
// Micro-benchmarks for the substrates and ablation benchmarks for the
// design choices called out in DESIGN.md (interval-product semantics,
// ILSA assignment algorithm) follow at the end.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eig"
	"repro/internal/experiments"
	"repro/internal/imatrix"
	"repro/internal/ipmf"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/nmf"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// benchConfig is the reduced-scale experiment configuration used by the
// benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Trials: 2, Scale: 0.15}
}

// runExperiment executes one experiment per iteration and reports the
// named headline values as custom metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, k := range metricKeys {
		if v, ok := last.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkFig3Alignment(b *testing.B) {
	runExperiment(b, "fig3", "meanBefore", "meanAfter")
}

func BenchmarkFig5Recompute(b *testing.B) {
	runExperiment(b, "fig5", "meanVBefore", "meanVAfter")
}

func BenchmarkFig6Accuracy(b *testing.B) {
	runExperiment(b, "fig6a", "ISVD0-c", "ISVD4-b")
}

func BenchmarkFig6Phases(b *testing.B) {
	runExperiment(b, "fig6b", "ISVD0", "ISVD4")
}

func BenchmarkTable2IntervalDensity(b *testing.B) {
	runExperiment(b, "table2a", "100%/ISVD4-b")
}

func BenchmarkTable2IntervalIntensity(b *testing.B) {
	runExperiment(b, "table2b", "100%/ISVD4-b")
}

func BenchmarkTable2MatrixDensity(b *testing.B) {
	runExperiment(b, "table2c", "90%/ISVD4-b")
}

func BenchmarkTable2MatrixShape(b *testing.B) {
	runExperiment(b, "table2d", "25-by-400/ISVD4-b")
}

func BenchmarkTable2TargetRank(b *testing.B) {
	runExperiment(b, "table2e", "40/ISVD4-b")
}

func BenchmarkFig7Anonymized(b *testing.B) {
	runExperiment(b, "fig7", "high/ISVD4-b@40")
}

func BenchmarkFig8Reconstruction(b *testing.B) {
	runExperiment(b, "fig8a", "ISVD4-b@10", "NMF@10")
}

func BenchmarkFig8NN(b *testing.B) {
	runExperiment(b, "fig8b", "ISVD2-b@20", "NMF@20")
}

func BenchmarkFig8Clustering(b *testing.B) {
	runExperiment(b, "fig8c", "ISVD2-b@20", "NMF@20")
}

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", "16x16/isvd2b", "16x16/interval")
}

func BenchmarkFig9Ciao(b *testing.B) {
	runExperiment(b, "fig9a", "ISVD4-b@28", "ISVD0-c@28")
}

func BenchmarkFig9Epinions(b *testing.B) {
	runExperiment(b, "fig9b", "ISVD4-b@27", "ISVD0-c@27")
}

func BenchmarkFig9MovieLens(b *testing.B) {
	runExperiment(b, "fig9c", "ISVD4-b@19", "ISVD0-c@19")
}

func BenchmarkFig10CF(b *testing.B) {
	runExperiment(b, "fig10", "PMF@10", "AI-PMF@10")
}

// --- Substrate micro-benchmarks ---

func benchIntervalMatrix(rng *rand.Rand, rows, cols int) *imatrix.IMatrix {
	m := imatrix.New(rows, cols)
	for i := range m.Lo.Data {
		v := rng.Float64()
		m.Lo.Data[i] = v
		m.Hi.Data[i] = v + rng.Float64()*0.5
	}
	return m
}

func BenchmarkIntervalMatMulExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchIntervalMatrix(rng, 60, 80)
	y := benchIntervalMatrix(rng, 80, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imatrix.Mul(x, y)
	}
}

func BenchmarkIntervalMatMulEndpoints(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchIntervalMatrix(rng, 60, 80)
	y := benchIntervalMatrix(rng, 80, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imatrix.MulEndpoints(x, y)
	}
}

func BenchmarkSVD100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := matrix.New(100, 100)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eig.SVD(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEig200(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eig.SymEig(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkISVD(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rng)
	for _, method := range core.Methods() {
		b.Run(method.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(m, method, core.Options{Rank: 20, Target: core.TargetB}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHungarian(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	score := make([][]float64, n)
	for i := range score {
		score[i] = make([]float64, n)
		for j := range score[i] {
			score[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.SolveHungarian(score)
	}
}

// BenchmarkMatMulParallel measures the worker pool's effect on the dense
// matrix product at the paper's Table 2 scale (500x500): the serial
// sub-benchmark pins the pool to one worker, parallel uses every core.
// Results are bitwise identical between the two (see determinism_test.go).
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n := 500
	x := matrix.New(n, n)
	y := matrix.New(n, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			parallel.SetWorkers(bench.workers)
			defer parallel.SetWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.Mul(x, y)
			}
		})
	}
}

// BenchmarkIntervalMatMulParallel covers the endpoint interval product
// (Supplementary Algorithm 1) at the 500x500 Table 2 scale.
func BenchmarkIntervalMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := benchIntervalMatrix(rng, 500, 500)
	y := benchIntervalMatrix(rng, 500, 500)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			parallel.SetWorkers(bench.workers)
			defer parallel.SetWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				imatrix.MulEndpoints(x, y)
			}
		})
	}
}

// BenchmarkISVD4Parallel runs the full ISVD4 pipeline on the default
// synthetic config (250x400, the Fig. 6 instance) serially vs on the
// pool; the speedup comes from the Gram products, the sharded eigensolver
// sweeps, and the interval solve/recompute products.
func BenchmarkISVD4Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rng)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			parallel.SetWorkers(bench.workers)
			defer parallel.SetWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(m, core.ISVD4, core.Options{Rank: 20, Target: core.TargetB}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// AblationAlgebra compares the paper's endpoint-product semantics against
// exact interval algebra inside ISVD4 under TargetA (interval factors),
// where the width difference shows: exact algebra is sound but inflates
// the factor intervals and loses most of the accuracy when spans are
// large.
func BenchmarkAblationAlgebra(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cfg := dataset.DefaultSynthetic()
	cfg.Rows, cfg.Cols = 40, 60
	m := dataset.MustGenerateUniform(cfg, rng)
	for _, exact := range []bool{false, true} {
		name := "endpoint"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var h, span float64
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.ISVD4, core.Options{
					Rank: 20, Target: core.TargetA, ExactAlgebra: exact,
				})
				if err != nil {
					b.Fatal(err)
				}
				h = d.Evaluate(m).HMean
				span = d.U.TotalSpan() / float64(d.U.Rows()*d.U.Cols())
			}
			b.ReportMetric(h, "H-mean")
			b.ReportMetric(span, "U-span")
		})
	}
}

// AblationAssign compares the three ILSA matching algorithms (Hungarian =
// the paper's optimal Problem 2, Greedy = Supplementary Algorithm 6,
// stable marriage = Problem 1) on decomposition accuracy and time.
func BenchmarkAblationAssign(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rng)
	for _, method := range []assign.Method{assign.Hungarian, assign.Greedy, assign.StableMarriage} {
		b.Run(method.String(), func(b *testing.B) {
			var h float64
			for i := 0; i < b.N; i++ {
				d, err := core.Decompose(m, core.ISVD4, core.Options{
					Rank: 20, Target: core.TargetB, Assign: method,
				})
				if err != nil {
					b.Fatal(err)
				}
				h = d.Evaluate(m).HMean
			}
			b.ReportMetric(h, "H-mean")
		})
	}
}

// AblationAlignment quantifies what ILSA itself buys: ISVD1 with
// alignment (normal) vs ISVD0 (no alignment possible) on cosine and
// H-mean, plus the K-means NMI with and without interval features.
func BenchmarkAblationAlignment(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := dataset.MustGenerateUniform(dataset.DefaultSynthetic(), rng)
	b.Run("ISVD1-aligned", func(b *testing.B) {
		var after float64
		for i := 0; i < b.N; i++ {
			d, err := core.Decompose(m, core.ISVD1, core.Options{Rank: 20, Target: core.TargetB})
			if err != nil {
				b.Fatal(err)
			}
			var s float64
			for _, c := range d.CosVAligned {
				s += c
			}
			after = s / float64(len(d.CosVAligned))
		}
		b.ReportMetric(after, "meanCos")
	})
	b.Run("unaligned", func(b *testing.B) {
		var before float64
		for i := 0; i < b.N; i++ {
			svdLo, err := eig.SVD(m.Lo)
			if err != nil {
				b.Fatal(err)
			}
			svdHi, err := eig.SVD(m.Hi)
			if err != nil {
				b.Fatal(err)
			}
			cs := align.ColumnCosines(svdLo.Truncate(20).V, svdHi.Truncate(20).V)
			var s float64
			for _, c := range cs {
				s += c
			}
			before = s / float64(len(cs))
		}
		b.ReportMetric(before, "meanCos")
	})
}

// BenchmarkRMSEPredict covers the CF prediction path end to end at a
// small scale.
func BenchmarkCFPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rc := dataset.MovieLensLike().Scaled(0.05)
	data, err := dataset.GenerateRatings(rc, rng)
	if err != nil {
		b.Fatal(err)
	}
	iv := data.CFIntervals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := ipmf.TrainAIPMF(iv, ipmf.Config{Rank: 8, Epochs: 40, LearningRate: 0.01}, rng)
		if err != nil {
			b.Fatal(err)
		}
		pred := make([]float64, len(data.Ratings))
		truth := make([]float64, len(data.Ratings))
		for k, r := range data.Ratings {
			pred[k] = model.Predict(r.User, r.Item)
			truth[k] = r.Value
		}
		b.ReportMetric(metrics.RMSE(pred, truth), "trainRMSE")
	}
}

// --- Blocked/fused kernel benchmarks ---

// reportGFLOPS attaches a GFLOP/s metric computed from the per-iteration
// flop count, so kernel regressions show up as a throughput number that
// is comparable across matrix sizes.
func reportGFLOPS(b *testing.B, flopsPerOp float64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(flopsPerOp*float64(b.N)/s/1e9, "GFLOP/s")
	}
}

// BenchmarkKernelMul measures the cache-blocked dense product on one
// worker at the paper-relevant 256–1024² sizes (CI smoke runs one
// iteration of each; BENCH_kernels.json pins the committed baseline).
func BenchmarkKernelMul(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			parallel.SetWorkers(1)
			defer parallel.SetWorkers(0)
			x := matrix.New(n, n)
			y := matrix.New(n, n)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
				y.Data[i] = rng.NormFloat64()
			}
			dst := matrix.New(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.MulInto(dst, x, y)
			}
			reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
		})
	}
}

// BenchmarkKernelTMul covers the transpose product of the Gram step.
func BenchmarkKernelTMul(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	n := 512
	x := matrix.New(n, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := matrix.New(n, n)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.TMulInto(dst, x, x)
	}
	reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
}

// BenchmarkKernelMulT covers the a·bᵀ reconstruction product.
func BenchmarkKernelMulT(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	n := 512
	x := matrix.New(n, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := matrix.New(n, n)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.MulTInto(dst, x, x)
	}
	reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
}

// BenchmarkKernelMulEndpoints measures the fused Algorithm 1 endpoint
// product: four candidate products and the min/max combine in one pass,
// allocs/op shows the four matrix-sized temporaries are gone.
func BenchmarkKernelMulEndpoints(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			parallel.SetWorkers(1)
			defer parallel.SetWorkers(0)
			x := benchIntervalMatrix(rng, n, n)
			y := benchIntervalMatrix(rng, n, n)
			dst := imatrix.New(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				imatrix.MulEndpointsInto(dst, x, y)
			}
			reportGFLOPS(b, 8*float64(n)*float64(n)*float64(n))
		})
	}
}

// BenchmarkKernelGramEndpoints measures the fused endpoint Gram kernel
// at the tall-thin shape of the ISVD Gram step.
func BenchmarkKernelGramEndpoints(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	m := benchIntervalMatrix(rng, 1024, 256)
	dst := imatrix.New(256, 256)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imatrix.GramEndpointsInto(dst, m)
	}
	reportGFLOPS(b, 8*1024*256*256)
}

// BenchmarkNMFTrain pins the workspace-reuse win in the NMF
// multiplicative-update path (allocs/op is the headline: the update
// loop itself no longer allocates matrices).
func BenchmarkNMFTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	m := matrix.New(120, 90)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmf.Train(m, nmf.Config{Rank: 10, Iterations: 60}, rand.New(rand.NewSource(26))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sparse CSR benchmarks ---

// BenchmarkSGDSparse pins the headline property of the CSR training
// path: the ipmf epoch cost scales with the number of observed cells
// (NNZ), not with rows·cols. Every sub-benchmark trains on the SAME
// number of ratings (so ns/op should stay roughly flat) while the
// matrix area grows 16x — densities run from 4% down to 0.25%. The
// dense entry point at the same shape pays an additional O(rows·cols)
// for storage and compression, pinned by the matching Dense variants.
func BenchmarkSGDSparse(b *testing.B) {
	const nRatings = 4000
	cfg := ipmf.Config{Rank: 8, Epochs: 10, LearningRate: 0.01}
	for _, shape := range []struct {
		users, items int
	}{{250, 400}, {500, 800}, {1000, 1600}} {
		rc := dataset.RatingsConfig{
			Users: shape.users, Items: shape.items, Genres: 8,
			NumRatings: nRatings, LatentRank: 6, Alpha: 0.4,
		}
		data, err := dataset.GenerateRatings(rc, rand.New(rand.NewSource(31)))
		if err != nil {
			b.Fatal(err)
		}
		csr := data.CFIntervalsCSR()
		density := float64(csr.NNZ()) / float64(shape.users*shape.items)
		b.Run(fmt.Sprintf("CSR-%dx%d-density%.2f%%", shape.users, shape.items, 100*density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ipmf.TrainAIPMFCSR(csr, cfg, rand.New(rand.NewSource(32))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Dense-%dx%d-density%.2f%%", shape.users, shape.items, 100*density), func(b *testing.B) {
			dense := csr.ToIMatrix()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ipmf.TrainAIPMF(dense, cfg, rand.New(rand.NewSource(32))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRMulDense compares the CSR·Dense kernel against the dense
// product at 5% density (results are bitwise identical; see
// internal/sparse property tests).
func BenchmarkCSRMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	n := 600
	a := matrix.New(n, n)
	for i := range a.Data {
		if rng.Float64() < 0.05 {
			a.Data[i] = rng.NormFloat64()
		}
	}
	dense := matrix.New(n, 64)
	for i := range dense.Data {
		dense.Data[i] = rng.NormFloat64()
	}
	csr := sparse.FromDense(a)
	b.Run("CSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.MulDense(csr, dense)
		}
	})
	b.Run("Dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.Mul(a, dense)
		}
	})
}

// BenchmarkSparseGram covers the endpoint Gram product (the ISVD Gram
// step) from sparse storage at 5% density.
func BenchmarkSparseGram(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	m := imatrix.New(800, 120)
	for i := range m.Lo.Data {
		if rng.Float64() < 0.05 {
			v := rng.Float64()
			m.Lo.Data[i] = v
			m.Hi.Data[i] = v + 0.3*rng.Float64()
		}
	}
	csr := sparse.FromIMatrix(m)
	b.Run("CSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.GramEndpoints(csr)
		}
	})
	b.Run("Dense", func(b *testing.B) {
		mt := m.T()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			imatrix.MulEndpoints(mt, m)
		}
	})
}
